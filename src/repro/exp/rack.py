"""Rack-scale evaluation (cluster experiment).

The deployment question the single-server tables cannot answer: when a
diurnal datacenter trace (Fig. 8's log-normal construction, scaled to
rack size) lands on a rack of 4–16 servers behind a front-tier L4
balancer, how do HAL racks compare against host-only and SLB racks on
throughput, tail latency, power and energy efficiency — and how much do
the dispatch policy and whole-server sleep matter?

Two sub-grids:

* **policy grid** — every dispatch policy × {hal, host, slb} members at
  a fixed 4-server rack: flow-hash/round-robin spread load (no server
  ever sleeps), p2c balances on occupancy, packing concentrates load so
  the autoscaler can park whole servers;
* **scaling grid** — the packing policy at 4/8/16 servers: rack EE as
  the rack grows while the diurnal average stays a small fraction of
  capacity.

All rack-level numbers are *derived* (ToR watts, deep-sleep draw,
wake-up latency modelled from typical hardware, not measured by the
paper) — the interesting quantity is the *relative* EE of HAL racks vs
host/SLB racks under identical balancing, not any absolute watt value.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.policies import POLICIES
from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.runner import JobSpec, current_runner

SYSTEMS = ("hal", "host", "slb")
POLICY_GRID_SERVERS = 4
SCALING_SERVERS = (4, 8, 16)
FUNCTION = "nat"
TRACE = "web"


def run(
    config: RunConfig = DEFAULT_CONFIG,
    systems: Sequence[str] = SYSTEMS,
    policies: Sequence[str] = POLICIES,
    scaling_servers: Sequence[int] = SCALING_SERVERS,
    trace: str = TRACE,
    function: str = FUNCTION,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="cluster",
        title="Rack-scale: dispatch policy and rack size vs energy efficiency",
        columns=(
            "servers",
            "policy",
            "trace",
            "system",
            "max_gbps",
            "avg_gbps",
            "p99_us",
            "power_w",
            "ee",
            "snic_share",
            "awake_mean",
        ),
    )
    grid = [
        (POLICY_GRID_SERVERS, policy, kind)
        for policy in policies
        for kind in systems
    ]
    grid += [
        (servers, "packing", kind)
        for servers in scaling_servers
        if servers != POLICY_GRID_SERVERS  # already in the policy grid
        for kind in systems
    ]
    specs = [
        JobSpec.rack(kind, function, trace, config, servers=servers, policy=policy)
        for servers, policy, kind in grid
    ]
    for (servers, policy, kind), m in zip(grid, current_runner().map_metrics(specs)):
        result.add_row(
            servers=servers,
            policy=policy,
            trace=trace,
            system=kind,
            max_gbps=m.extras.get("max_window_gbps", m.throughput_gbps),
            avg_gbps=m.throughput_gbps,
            p99_us=m.p99_latency_us,
            power_w=m.average_power_w,
            ee=m.energy_efficiency,
            snic_share=m.snic_share,
            awake_mean=m.extras.get("rack_awake_mean", float(servers)),
        )
    _add_ee_notes(result)
    result.add_note(
        "rack numbers are derived, not paper-anchored: ToR watts, server "
        "deep-sleep draw and wake-up latency are modelled from typical "
        "hardware (see EXPERIMENTS.md); compare systems relatively"
    )
    return result


def run_focused(
    config: RunConfig = DEFAULT_CONFIG,
    servers: int = POLICY_GRID_SERVERS,
    policy: str = "packing",
    trace: str = TRACE,
    function: str = FUNCTION,
    systems: Sequence[str] = SYSTEMS,
) -> ExperimentResult:
    """One rack shape, every member system — the CLI's
    ``repro cluster --servers N --policy P --trace T`` path."""
    result = ExperimentResult(
        experiment="cluster",
        title=(
            f"Rack-scale: {servers} servers, {policy} policy, {trace} trace"
        ),
        columns=(
            "servers",
            "policy",
            "trace",
            "system",
            "max_gbps",
            "avg_gbps",
            "p99_us",
            "power_w",
            "ee",
            "snic_share",
            "awake_mean",
        ),
    )
    specs = [
        JobSpec.rack(kind, function, trace, config, servers=servers, policy=policy)
        for kind in systems
    ]
    for kind, m in zip(systems, current_runner().map_metrics(specs)):
        result.add_row(
            servers=servers,
            policy=policy,
            trace=trace,
            system=kind,
            max_gbps=m.extras.get("max_window_gbps", m.throughput_gbps),
            avg_gbps=m.throughput_gbps,
            p99_us=m.p99_latency_us,
            power_w=m.average_power_w,
            ee=m.energy_efficiency,
            snic_share=m.snic_share,
            awake_mean=m.extras.get("rack_awake_mean", float(servers)),
        )
    _add_ee_notes(result)
    result.add_note(
        "rack numbers are derived, not paper-anchored (see EXPERIMENTS.md)"
    )
    return result


def _add_ee_notes(result: ExperimentResult) -> None:
    """HAL-rack vs host-rack EE, per (servers, policy) cell pair."""
    by_key = {
        (row["servers"], row["policy"], row["system"]): row for row in result.rows
    }
    gains = []
    for (servers, policy, system), row in sorted(by_key.items()):
        if system != "hal":
            continue
        host = by_key.get((servers, policy, "host"))
        if host is None or not host["ee"]:
            continue
        gain = row["ee"] / host["ee"]
        gains.append(gain)
        result.add_note(
            f"{servers} servers / {policy}: HAL-rack EE = {gain:.2f}x host-rack "
            f"(awake_mean {row['awake_mean']:.2f} vs {host['awake_mean']:.2f})"
        )
    if gains:
        result.add_note(
            f"mean HAL-rack EE gain over host-rack across the grid: "
            f"{sum(gains) / len(gains):.2f}x"
        )
