"""Experiment registry: figure/table id → runner function.

:func:`run_experiment` is the raw in-process path.
:func:`run_experiment_via` layers the orchestration subsystem on top:
an experiment-level entry in the runner's result cache, and the runner
installed as *current* while the experiment executes so its internal
fan-out (rate sweeps, trace grids) parallelizes and caches per run.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exp import (
    costs,
    discussion,
    fabric,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    rack,
    table1,
    table2,
    smallpkt,
    table5,
    validation,
)
from repro.exp.report import ExperimentResult
from repro.exp.server import RunConfig

Runner = Callable[[RunConfig], ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "table2": table2.run,
    "fig5": fig5.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table5": table5.run,
    "fig10": fig10.run,
    "costs": costs.run,
    "smallpkt": smallpkt.run,
    "cluster": rack.run,
    "fabric": fabric.run,
    "dvfs": discussion.run_dvfs,
    "complementary": discussion.run_complementary,
    "validation": validation.run,
}


def available_experiments() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(name: str, config: RunConfig) -> ExperimentResult:
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {available_experiments()}"
        )
    return EXPERIMENTS[name](config)


def run_experiment_via(runner, name: str, config: RunConfig) -> ExperimentResult:
    """Run one experiment through ``runner`` (cache + parallel fan-out)."""
    from repro.runner import JobSpec, use_runner
    from repro.runner.executor import experiment_payload

    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {available_experiments()}"
        )
    spec = JobSpec.experiment(name, config)
    if runner.cache is not None:
        payload = runner.cache.get(spec)
        if payload is not None:
            return ExperimentResult.from_dict(payload["data"])
    with use_runner(runner):
        result = run_experiment(name, config)
    if runner.cache is not None:
        runner.cache.put(spec, experiment_payload(result))
    return result
