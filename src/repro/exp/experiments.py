"""Experiment registry: figure/table id → runner."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exp import (
    costs,
    discussion,
    fig2,
    fig3,
    fig4,
    fig5,
    fig8,
    fig9,
    fig10,
    table1,
    table2,
    smallpkt,
    table5,
    validation,
)
from repro.exp.report import ExperimentResult
from repro.exp.server import RunConfig

Runner = Callable[[RunConfig], ExperimentResult]

EXPERIMENTS: Dict[str, Runner] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "table2": table2.run,
    "fig5": fig5.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table5": table5.run,
    "fig10": fig10.run,
    "costs": costs.run,
    "smallpkt": smallpkt.run,
    "dvfs": discussion.run_dvfs,
    "complementary": discussion.run_complementary,
    "validation": validation.run,
}


def available_experiments() -> List[str]:
    return list(EXPERIMENTS)


def run_experiment(name: str, config: RunConfig) -> ExperimentResult:
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; known: {available_experiments()}"
        )
    return EXPERIMENTS[name](config)
