"""Fabric-scale evaluation: fleet energy-per-request across systems.

The datacenter question one rack cannot answer: when a diurnal
multi-workload fleet curve (web + cache + Hadoop phases stitched over
``model_hours``) lands on N racks behind a global dispatch/autoscaling/
power-capping tier, how do HAL fleets compare against host-only fleets
on energy-per-request — and how much does cross-rack packing (parking
whole racks, not just servers) buy on top of the rack autoscaler?

Everything here is **derived, not paper-anchored** (the paper measures
one server; racks and fabric add modelled ToR/sleep/diurnal layers) —
compare systems relatively.

Result payloads are wall-clock-free and shard-count-independent: the
same config produces a byte-identical :class:`ExperimentResult` at any
``--shard-jobs``, which is what the CI identity gate asserts.  Scaling
*efficiency* (wall-clock vs worker count) is measured by the CLI's
``--scaling`` path, outside the payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.fabric.system import FabricConfig, FabricResult, run_fabric

if TYPE_CHECKING:
    from repro.obs.fleet import FleetTelemetry

SYSTEMS = ("hal", "host")
GRID_RACKS = 2
GRID_SERVERS = 2

#: fabric epochs are control-plane barriers, far coarser than the flow
#: tick; the grid uses 20 ms epochs over 1 ms flow intervals
EPOCH_S = 0.02
FLOW_INTERVAL_S = 1e-3

COLUMNS = (
    "racks",
    "servers",
    "dispatch",
    "mix",
    "system",
    "offered_gbps",
    "avg_gbps",
    "p99_us",
    "power_w",
    "ee",
    "uj_per_req",
    "awake_mean",
    "hot_racks",
)


def fabric_config(
    config: RunConfig,
    system: str,
    racks: int,
    servers: int,
    dispatch: str,
    mix: str,
    model_hours: float,
    policy: str = "packing",
    power_cap_w: float = 0.0,
) -> FabricConfig:
    """One member system's :class:`FabricConfig` for a fabric shape
    (shared by :func:`run_focused` and the resumable serve driver, which
    must build byte-identical configs)."""
    return FabricConfig(
        racks=racks,
        servers=servers,
        member_kind=system,
        function="nat",
        policy=policy,
        dispatch=dispatch,
        mix=mix,
        model_hours=model_hours,
        duration_s=config.duration_s,
        epoch_s=EPOCH_S,
        flow_interval_s=FLOW_INTERVAL_S,
        packet_bytes=config.packet_bytes,
        seed=config.seed,
        power_cap_w=power_cap_w,
    )


def add_fabric_row(
    result: ExperimentResult, cfg: FabricConfig, outcome: FabricResult
) -> None:
    fleet = outcome.fleet
    result.add_row(
        racks=cfg.racks,
        servers=cfg.servers,
        dispatch=cfg.dispatch,
        mix=cfg.mix,
        system=cfg.member_kind,
        offered_gbps=fleet.offered_gbps,
        avg_gbps=fleet.throughput_gbps,
        p99_us=fleet.p99_latency_us,
        power_w=fleet.average_power_w,
        ee=fleet.energy_efficiency,
        uj_per_req=fleet.extras.get("uj_per_req", 0.0),
        awake_mean=fleet.extras.get("fleet_awake_mean", 0.0),
        hot_racks=fleet.extras.get("hot_racks_mean", float(cfg.racks)),
    )


def _add_ee_notes(result: ExperimentResult) -> None:
    """HAL-fleet vs host-fleet energy-per-request, per fabric shape."""
    by_key = {
        (row["racks"], row["dispatch"], row["system"]): row
        for row in result.rows
    }
    for (racks, dispatch, system), row in sorted(by_key.items()):
        if system != "hal":
            continue
        host = by_key.get((racks, dispatch, "host"))
        if host is None or not host["uj_per_req"]:
            continue
        result.add_note(
            f"{racks} racks / {dispatch}: HAL fleet {row['uj_per_req']:.1f} "
            f"uJ/req vs host {host['uj_per_req']:.1f} uJ/req "
            f"({host['uj_per_req'] / row['uj_per_req']:.2f}x) — "
            f"awake {row['awake_mean']:.2f} vs {host['awake_mean']:.2f} servers"
        )


def focused_result(
    racks: int,
    servers: int,
    dispatch: str,
    mix: str,
    model_hours: float,
) -> ExperimentResult:
    """The empty result shell of one focused fabric run.  Split out of
    :func:`run_focused` so the resumable driver in
    :mod:`repro.serve.checkpoint` assembles the identical payload."""
    return ExperimentResult(
        experiment="fabric",
        title=(
            f"Fabric-scale: {racks} racks x {servers} servers, "
            f"{dispatch} dispatch, {model_hours:g} h of the {mix!r} mix"
        ),
        columns=COLUMNS,
    )


def finalize_focused(result: ExperimentResult) -> ExperimentResult:
    """Stamp the focused run's closing notes (counterpart of
    :func:`focused_result`; see there)."""
    _add_ee_notes(result)
    result.add_note(
        "fabric numbers are derived, not paper-anchored (see EXPERIMENTS.md)"
    )
    return result


def run(
    config: RunConfig = DEFAULT_CONFIG,
    systems: Sequence[str] = SYSTEMS,
) -> ExperimentResult:
    """The registered grid: a small fixed fabric cell per member system
    (always ``shard_jobs=1`` — the registry path must stay deterministic
    and process-count-free; sharding is the CLI's focused path)."""
    result = ExperimentResult(
        experiment="fabric",
        title="Fabric-scale: fleet energy-per-request under a diurnal mix",
        columns=COLUMNS,
    )
    for system in systems:
        cfg = fabric_config(
            config,
            system,
            racks=GRID_RACKS,
            servers=GRID_SERVERS,
            dispatch="packing",
            mix="mix",
            model_hours=24.0,
        )
        add_fabric_row(result, cfg, run_fabric(cfg, shard_jobs=1))
    _add_ee_notes(result)
    result.add_note(
        "fabric numbers are derived, not paper-anchored: diurnal phases, "
        "ToR watts, sleep states and the fleet control plane are modelled "
        "layers on top of the paper's single-server calibration (see "
        "EXPERIMENTS.md); compare systems relatively"
    )
    return result


def run_focused(
    config: RunConfig = DEFAULT_CONFIG,
    racks: int = 8,
    servers: int = GRID_SERVERS,
    dispatch: str = "packing",
    mix: str = "mix",
    model_hours: float = 24.0,
    policy: str = "packing",
    power_cap_w: float = 0.0,
    shard_jobs: int = 1,
    systems: Sequence[str] = SYSTEMS,
    wall_out: Optional[dict] = None,
    telemetry: Optional["FleetTelemetry"] = None,
) -> ExperimentResult:
    """One fabric shape, every member system — the CLI's
    ``repro fabric --racks N --shard-jobs K --hours H`` path.

    ``wall_out`` (never part of the payload) receives per-system
    step wall-clock from the sharded runner for the CLI to print.
    ``telemetry`` attaches the fleet telemetry plane to every member
    system's run (labelled by system); the payload is unchanged.
    """
    result = focused_result(racks, servers, dispatch, mix, model_hours)
    from repro.fabric.shard import SHARD_FACTORY
    from repro.runner.sharded import ShardedRunner

    for system in systems:
        cfg = fabric_config(
            config,
            system,
            racks=racks,
            servers=servers,
            dispatch=dispatch,
            mix=mix,
            model_hours=model_hours,
            policy=policy,
            power_cap_w=power_cap_w,
        )
        runner = ShardedRunner(
            cfg.shard_specs(telemetry=telemetry is not None),
            SHARD_FACTORY,
            jobs=shard_jobs,
        )
        try:
            outcome = run_fabric(
                cfg, runner=runner, telemetry=telemetry, label=system
            )
            if wall_out is not None:
                wall_out[system] = runner.step_wall_s
        finally:
            runner.close()
        add_fabric_row(result, cfg, outcome)
    return finalize_focused(result)
