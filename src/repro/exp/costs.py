"""§VII-C — hardware, latency, power, and bandwidth costs of HAL."""

from __future__ import annotations

from repro.core.costs import HlbCostReport, lbp_control_bandwidth_bps
from repro.core.lbp import LbpConfig
from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig


def run(config: RunConfig = DEFAULT_CONFIG) -> ExperimentResult:
    report = HlbCostReport()
    result = ExperimentResult(
        experiment="costs",
        title="HLB implementation cost report (paper values + derived)",
        columns=("metric", "value", "paper"),
    )
    result.add_row(metric="LUTs", value=report.luts, paper="13,861")
    result.add_row(
        metric="U280 LUT fraction",
        value=f"{report.u280_lut_fraction:.2%}",
        paper="1.1%",
    )
    result.add_row(
        metric="vs Corundum NIC LUTs",
        value=f"{report.corundum_lut_fraction:.1%}",
        paper="16.7%",
    )
    result.add_row(
        metric="added RTT (ns)", value=report.added_latency_ns, paper="800"
    )
    result.add_row(
        metric="transceiver+MAC share",
        value=f"{report.transceiver_mac_share:.0%}",
        paper="45%",
    )
    result.add_row(
        metric="HLB-logic-only latency (ns)",
        value=report.hlb_logic_latency_ns,
        paper="~435 (eliminable in ASIC)",
    )
    result.add_row(
        metric="FPGA power (W)", value=report.fpga_power_w, paper="<0.1"
    )
    result.add_row(
        metric="projected ASIC power (W)",
        value=f"{report.asic_power_w:.4f}",
        paper="14x below FPGA",
    )
    lbp_bw = lbp_control_bandwidth_bps(LbpConfig().period_s)
    result.add_row(
        metric="LBP control bandwidth (bps)",
        value=f"{lbp_bw:,.0f}",
        paper="not notable vs 100G",
    )
    result.add_row(
        metric="DPDK RTT increase",
        value=f"{report.dpdk_rtt_increase_fraction:.1%}",
        paper="8.3%",
    )
    return result
