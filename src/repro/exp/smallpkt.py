"""§III-A small-packet study: DPDK forwarding at 64 B vs MTU.

"Although the SNIC CPU uses its all 8 cores for the DPDK packet
processing function, it delivers throughput of only 40Gbps with 64-byte
packets ... With the MTU-size packets the SNIC CPU can accomplish the
line rate but at 4.7x higher p99 latency than the host CPU."
"""

from __future__ import annotations

from dataclasses import replace

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.exp.sweeps import find_max_throughput
from repro.net.packet import MTU_BYTES, SMALL_PACKET_BYTES


def run(config: RunConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="smallpkt",
        title="DPDK forwarding: 64 B vs MTU packets, SNIC CPU vs host CPU",
        columns=(
            "packet_bytes",
            "system",
            "max_gbps",
            "max_mpps",
            "p99_us",
        ),
    )
    for packet_bytes in (SMALL_PACKET_BYTES, MTU_BYTES):
        sized = replace(config, packet_bytes=packet_bytes, batch=None)
        for kind in ("snic", "host"):
            rate, metrics = find_max_throughput(
                kind, "dpdk-fwd", sized, iterations=6
            )
            result.add_row(
                packet_bytes=packet_bytes,
                system=kind,
                max_gbps=metrics.throughput_gbps,
                max_mpps=metrics.throughput_gbps * 1e9 / (packet_bytes * 8) / 1e6,
                p99_us=metrics.p99_latency_us,
            )
    result.add_note(
        "paper: SNIC CPU reaches only ~40 Gbps with 64 B packets (host at "
        "line rate) and matches line rate at MTU but with 4.7x the host p99"
    )
    return result
