"""Experiment result containers and text rendering.

Every experiment returns an :class:`ExperimentResult`: named columns, a
list of row dicts, and free-text notes recording the paper's expectation
next to what we measured. ``to_text()`` renders the aligned table the
CLI and the benches print, and EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, float, int, None]


def format_cell(value: Cell, precision: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) < 0.01:
            return f"{value:.4f}"
        return f"{value:.{precision}f}"
    return str(value)


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: flight-recorder dict from a traced run (``repro trace``); None for
    #: untraced runs so serialized payload bytes are unchanged
    obs: Optional[Dict[str, object]] = None

    def add_row(self, **cells: Cell) -> None:
        unknown = set(cells) - set(self.columns)
        if unknown:
            raise KeyError(f"row has cells not in columns: {sorted(unknown)}")
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form; ``from_dict`` round-trips ``to_text`` exactly.

        The ``obs`` key appears only when a flight recording is attached:
        untraced results keep the historical payload byte-for-byte (the
        bench identity check hashes these bytes)."""
        data: Dict[str, object] = {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }
        if self.obs:
            data["obs"] = self.obs
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        return cls(
            experiment=data["experiment"],
            title=data["title"],
            columns=list(data["columns"]),
            rows=[dict(row) for row in data["rows"]],
            notes=list(data["notes"]),
            obs=data.get("obs"),
        )

    def to_text(self, precision: int = 2) -> str:
        headers = list(self.columns)
        table = [
            [format_cell(row.get(col), precision) for col in headers]
            for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in table)) if table else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in table:
            lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def ratio_note(
    label: str, measured: float, paper: float, tolerance: Optional[float] = None
) -> str:
    """A paper-vs-measured annotation line."""
    text = f"{label}: measured {measured:.2f} vs paper {paper:.2f}"
    if tolerance is not None:
        ok = abs(measured - paper) <= tolerance * abs(paper)
        text += f" ({'within' if ok else 'OUTSIDE'} {tolerance:.0%})"
    return text
