"""Fig. 9 — throughput, p99, and power versus packet rate for NAT and
REM under the host processor, the SNIC processor, and HAL.

The paper's headline figure: HAL tracks the SNIC's (low) power up to the
SNIC's efficient rate, then grows linearly in throughput by spilling the
excess to the host, never letting p99 blow up or packets drop.
"""

from __future__ import annotations

from typing import Sequence

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.exp.sweeps import rate_sweep

DEFAULT_RATES = (5.0, 10.0, 20.0, 30.0, 41.0, 50.0, 60.0, 80.0, 100.0)
FUNCTIONS = ("nat", "rem")
SYSTEMS = ("host", "snic", "hal")


def run(
    config: RunConfig = DEFAULT_CONFIG,
    functions: Sequence[str] = FUNCTIONS,
    rates: Sequence[float] = DEFAULT_RATES,
    systems: Sequence[str] = SYSTEMS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig9",
        title="Throughput / p99 / power vs rate: host vs SNIC vs HAL",
        columns=(
            "function",
            "system",
            "offered_gbps",
            "tp_gbps",
            "p99_us",
            "drop_rate",
            "power_w",
            "snic_share",
        ),
    )
    for function in functions:
        for kind in systems:
            for point in rate_sweep(kind, function, rates, config):
                m = point.metrics
                result.add_row(
                    function=function,
                    system=kind,
                    offered_gbps=point.rate_gbps,
                    tp_gbps=m.throughput_gbps,
                    p99_us=m.p99_latency_us,
                    drop_rate=m.drop_rate,
                    power_w=m.average_power_w,
                    snic_share=m.snic_share,
                )
    result.add_note(
        "paper: SNIC drops beyond 41/30 Gbps (NAT/REM) with 120x/56x host "
        "p99 at 80 Gbps; HAL throughput grows linearly with rate, p99 stays "
        "near the SNIC's low-rate latency, and power runs 11-27% below host"
    )
    return result
