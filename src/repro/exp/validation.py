"""Paper-vs-measured validation sweep.

One experiment that re-derives the paper's headline numbers and flags
each as inside or outside a tolerance band — the quantitative backbone
of EXPERIMENTS.md. Every row names the claim, the paper's value, the
reproduction's value, and the verdict.
"""

from __future__ import annotations

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig, run_at_rate, run_trace
from repro.exp.sweeps import find_slo_throughput


def _verdict(measured: float, paper: float, tolerance: float) -> str:
    if paper == 0:
        return "n/a"
    return "OK" if abs(measured - paper) <= tolerance * abs(paper) else "OFF"


def run(config: RunConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="validation",
        title="Headline paper claims vs this reproduction",
        columns=("claim", "paper", "measured", "tolerance", "verdict"),
    )

    def add(claim: str, paper: float, measured: float, tolerance: float) -> None:
        result.add_row(
            claim=claim,
            paper=paper,
            measured=measured,
            tolerance=f"{tolerance:.0%}",
            verdict=_verdict(measured, paper, tolerance),
        )

    # Table II: NAT SLO throughput and EE ratio at the SLO point
    slo, snic_at_slo = find_slo_throughput("nat", config=config, iterations=6)
    host_at_slo = run_at_rate("host", "nat", max(slo, 0.02), config)
    add("NAT SNIC SLO throughput (Gbps)", 41.0, slo, 0.25)
    if host_at_slo.energy_efficiency:
        add(
            "NAT SNIC/host EE at SLO",
            1.31,
            snic_at_slo.energy_efficiency / host_at_slo.energy_efficiency,
            0.15,
        )

    # Fig. 4/9: SNIC NAT saturation and HAL scaling at 80 Gbps
    snic80 = run_at_rate("snic", "nat", 80.0, config)
    hal80 = run_at_rate("hal", "nat", 80.0, config)
    host80 = run_at_rate("host", "nat", 80.0, config)
    add("SNIC NAT max throughput (Gbps)", 41.5, snic80.throughput_gbps, 0.1)
    add("HAL NAT throughput at 80 Gbps", 80.0, hal80.throughput_gbps, 0.05)
    add(
        "HAL p99 / SNIC p99 at 80 Gbps (lower is better)",
        0.2,
        hal80.p99_latency_us / snic80.p99_latency_us,
        1.0,
    )
    add(
        "HAL power / host power at 80 Gbps",
        0.85,
        hal80.average_power_w / host80.average_power_w,
        0.12,
    )

    # §III-B: idle/loaded power envelope
    add("system power, SNIC-only at low rate (W)", 200.0,
        run_at_rate("snic", "nat", 2.0, config).average_power_w, 0.05)
    add("system power, host-only floor (W)", 242.0,
        run_at_rate("host", "nat", 2.0, config).average_power_w, 0.05)

    # Table V: HAL's trace-level EE gain over the host (hadoop, NAT)
    hal_trace = run_trace("hal", "nat", "hadoop", config)
    host_trace = run_trace("host", "nat", "hadoop", config)
    if host_trace.energy_efficiency:
        add(
            "HAL/host EE on hadoop trace (NAT)",
            1.29,
            hal_trace.energy_efficiency / host_trace.energy_efficiency,
            0.2,
        )
    result.add_note(
        "tolerances are generous where the paper reports ranges; "
        "EXPERIMENTS.md discusses every deliberate deviation"
    )
    return result
