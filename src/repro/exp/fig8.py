"""Fig. 8 — the three Meta datacenter traffic traces.

Synthesizes the web / cache / Hadoop rate traces from their published
log-normal parameters (μ/σ), verifies the achieved averages against the
paper's 1.6 / 5.2 / 10.9 Gbps, and summarises burstiness (peak rate,
idle fraction) of a 100-second snapshot, like the Fig. 8 plots.
"""

from __future__ import annotations

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.net.traffic import META_TRACES, synthesize_rate_trace
from repro.sim.rng import RngRegistry

SNAPSHOT_DURATION_S = 100.0
SNAPSHOT_INTERVAL_S = 0.1


def run(config: RunConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig8",
        title="Datacenter traffic traces (log-normal synthesis)",
        columns=(
            "trace",
            "mu",
            "sigma",
            "paper_avg_gbps",
            "avg_gbps",
            "peak_gbps",
            "idle_fraction",
            "p99_rate_gbps",
        ),
    )
    rng = RngRegistry(config.seed)
    for name, spec in META_TRACES.items():
        series = synthesize_rate_trace(
            spec, SNAPSHOT_DURATION_S, SNAPSHOT_INTERVAL_S, rng
        )
        values = sorted(series.values)
        idle = sum(1 for v in values if v < 0.05) / len(values)
        p99 = values[int(0.99 * (len(values) - 1))]
        result.add_row(
            trace=name,
            mu=spec.mu,
            sigma=spec.sigma,
            paper_avg_gbps=spec.average_gbps,
            avg_gbps=series.mean,
            peak_gbps=series.maximum,
            idle_fraction=idle,
            p99_rate_gbps=p99,
        )
    result.add_note(
        "rates are clipped at 100 Gbps line rate and rescaled so the trace "
        "average matches the paper's stated value; cache/hadoop's huge sigma "
        "yields near-on/off burst behaviour"
    )
    return result
