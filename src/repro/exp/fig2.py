"""Fig. 2 — maximum throughput and p99 latency, SNIC vs host, per function.

For each of the ten Table IV functions we binary-search the maximum
sustainable rate on the host processor and the SNIC processor, measure
p99 at that operating point, and report the SNIC values normalised to
the host (the paper's presentation). Three special rows reproduce the
§III-A comparisons that use different operating modes: REM with the
complex ruleset (SNIC accelerator wins 19×), the raw public-key-op
benchmark (host QAT wins 24–115×), and plain DPDK forwarding (both at
line rate, SNIC at 4.7× the p99).
"""

from __future__ import annotations

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig, run_at_rate
from repro.exp.sweeps import find_max_throughput
from repro.nf.registry import FUNCTION_NAMES

SPECIAL_ROWS = ("rem-lite", "crypto-pka", "dpdk-fwd")


def run(config: RunConfig = DEFAULT_CONFIG, functions=None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig2",
        title="Max throughput and p99 latency of SNIC vs host processor",
        columns=(
            "function",
            "host_max_gbps",
            "snic_max_gbps",
            "tp_ratio",
            "host_p99_us",
            "snic_p99_us",
            "p99_ratio",
        ),
    )
    names = tuple(functions) if functions else tuple(FUNCTION_NAMES) + SPECIAL_ROWS
    for function in names:
        host_rate, host_max = find_max_throughput("host", function, config)
        snic_rate, snic_max = find_max_throughput("snic", function, config)
        host_tp = host_max.throughput_gbps
        snic_tp = snic_max.throughput_gbps
        # p99 at the "maximum sustainable throughput point": re-measure a
        # hair below the cliff so the value reflects the operating point
        # rather than the bisection's distance from the edge
        host_metrics = run_at_rate("host", function, host_rate * 0.92, config)
        snic_metrics = run_at_rate("snic", function, snic_rate * 0.92, config)
        result.add_row(
            function=function,
            host_max_gbps=host_tp,
            snic_max_gbps=snic_tp,
            tp_ratio=snic_tp / host_tp if host_tp else None,
            host_p99_us=host_metrics.p99_latency_us,
            snic_p99_us=snic_metrics.p99_latency_us,
            p99_ratio=(
                snic_metrics.p99_latency_us / host_metrics.p99_latency_us
                if host_metrics.p99_latency_us
                else None
            ),
        )
    result.add_note(
        "paper: host wins throughput for all software functions (SNIC 24-69% "
        "lower) and crypto (PKA row: 24-115x); SNIC accelerator wins REM with "
        "the complex ruleset (19x) and compression (host at 46-72%)"
    )
    return result
