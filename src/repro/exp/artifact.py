"""Artifact-style batch runner.

The paper's artifact drives everything through
``run_all_fig.sh <run_name>`` and stores per-figure ``.txt`` results.
This module mirrors that workflow: :func:`run_all` executes a chosen set
of experiments, writes ``<results_dir>/<run_name>/<experiment>.txt`` for
each, plus a ``MANIFEST.txt`` with the configuration and wall times, and
returns the collected results.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exp.experiments import available_experiments, run_experiment
from repro.exp.report import ExperimentResult
from repro.exp.server import RunConfig

#: the cheap always-on set; heavyweight grids opt in explicitly
DEFAULT_EXPERIMENTS = (
    "table1",
    "fig4",
    "table2",
    "fig5",
    "fig8",
    "fig9",
    "costs",
    "dvfs",
    "complementary",
)


@dataclass
class ArtifactRun:
    run_name: str
    results_dir: str
    config: RunConfig
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    wall_times_s: Dict[str, float] = field(default_factory=dict)

    @property
    def run_dir(self) -> str:
        return os.path.join(self.results_dir, self.run_name)


def run_all(
    run_name: str,
    results_dir: str = "results",
    experiments: Optional[Sequence[str]] = None,
    config: RunConfig = RunConfig(),
) -> ArtifactRun:
    """Execute ``experiments`` and persist one .txt per figure/table."""
    names = list(experiments) if experiments else list(DEFAULT_EXPERIMENTS)
    unknown = set(names) - set(available_experiments())
    if unknown:
        raise KeyError(f"unknown experiments: {sorted(unknown)}")

    run = ArtifactRun(run_name=run_name, results_dir=results_dir, config=config)
    os.makedirs(run.run_dir, exist_ok=True)
    for name in names:
        started = time.time()
        result = run_experiment(name, config)
        run.wall_times_s[name] = time.time() - started
        run.results[name] = result
        path = os.path.join(run.run_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(result.to_text() + "\n")
    _write_manifest(run)
    return run


def _write_manifest(run: ArtifactRun) -> None:
    lines: List[str] = [
        f"run: {run.run_name}",
        f"duration_s per run: {run.config.duration_s}",
        f"seed: {run.config.seed}",
        "",
        "experiment            wall_s  rows",
    ]
    for name, result in run.results.items():
        lines.append(
            f"{name:20s} {run.wall_times_s[name]:7.1f}  {len(result.rows):4d}"
        )
    with open(os.path.join(run.run_dir, "MANIFEST.txt"), "w") as fh:
        fh.write("\n".join(lines) + "\n")


def load_result_text(run: ArtifactRun, experiment: str) -> str:
    """Read back one persisted result file."""
    path = os.path.join(run.run_dir, f"{experiment}.txt")
    with open(path) as fh:
        return fh.read()
