"""Artifact-style batch runner.

The paper's artifact drives everything through
``run_all_fig.sh <run_name>`` and stores per-figure ``.txt`` results.
This module mirrors that workflow on top of the orchestration
subsystem: :func:`run_all` fans the chosen experiments out through a
:class:`repro.runner.Runner` (process pool and/or result cache when one
is supplied, plain in-process execution otherwise), writes
``<results_dir>/<run_name>/<experiment>.txt`` for each, plus a
``MANIFEST.txt`` with the configuration, wall times, and any failures,
and returns the collected results.

A failed experiment is recorded in the manifest and in
:attr:`ArtifactRun.failures`; its siblings still run to completion, so
an interrupted or partially-broken batch can be re-run and — with the
cache warm — only redo the missing work.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exp.experiments import available_experiments
from repro.exp.report import ExperimentResult
from repro.exp.server import RunConfig
from repro.runner import JobSpec, Runner

#: the cheap always-on set; heavyweight grids opt in explicitly
DEFAULT_EXPERIMENTS = (
    "table1",
    "fig4",
    "table2",
    "fig5",
    "fig8",
    "fig9",
    "costs",
    "dvfs",
    "complementary",
)


@dataclass
class ArtifactRun:
    run_name: str
    results_dir: str
    config: RunConfig
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    wall_times_s: Dict[str, float] = field(default_factory=dict)
    cached: Dict[str, bool] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)

    @property
    def run_dir(self) -> str:
        return os.path.join(self.results_dir, self.run_name)


def run_all(
    run_name: str,
    results_dir: str = "results",
    experiments: Optional[Sequence[str]] = None,
    config: Optional[RunConfig] = None,
    runner: Optional[Runner] = None,
) -> ArtifactRun:
    """Execute ``experiments`` and persist one .txt per figure/table."""
    config = config if config is not None else RunConfig()
    names = list(experiments) if experiments else list(DEFAULT_EXPERIMENTS)
    unknown = set(names) - set(available_experiments())
    if unknown:
        raise KeyError(f"unknown experiments: {sorted(unknown)}")
    runner = runner or Runner()

    run = ArtifactRun(run_name=run_name, results_dir=results_dir, config=config)
    os.makedirs(run.run_dir, exist_ok=True)
    specs = [JobSpec.experiment(name, config) for name in names]
    report = runner.run(specs, strict=False)
    for name, outcome in zip(names, report.outcomes):
        run.wall_times_s[name] = outcome.wall_s
        run.cached[name] = outcome.cached
        if not outcome.ok:
            run.failures[name] = outcome.error or "unknown failure"
            continue
        result = outcome.decoded()
        run.results[name] = result
        path = os.path.join(run.run_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(result.to_text() + "\n")
    _write_manifest(run, runner)
    return run


def _write_manifest(run: ArtifactRun, runner: Runner) -> None:
    lines: List[str] = [
        f"run: {run.run_name}",
        f"duration_s per run: {run.config.duration_s}",
        f"seed: {run.config.seed}",
        f"jobs: {runner.jobs}",
        f"cache: {runner.cache.root if runner.cache else 'off'}",
        "",
        "experiment            wall_s  rows",
    ]
    for name in run.wall_times_s:
        if name in run.failures:
            lines.append(f"{name:20s} {run.wall_times_s[name]:7.1f}  FAILED")
            continue
        result = run.results[name]
        cached = "  (cached)" if run.cached.get(name) else ""
        lines.append(
            f"{name:20s} {run.wall_times_s[name]:7.1f}  {len(result.rows):4d}{cached}"
        )
    if run.failures:
        lines.append("")
        for name, error in run.failures.items():
            lines.append(f"FAILED {name}:")
            lines.extend(f"  {line}" for line in error.strip().splitlines())
    with open(os.path.join(run.run_dir, "MANIFEST.txt"), "w") as fh:
        fh.write("\n".join(lines) + "\n")


def load_result_text(run: ArtifactRun, experiment: str) -> str:
    """Read back one persisted result file."""
    path = os.path.join(run.run_dir, f"{experiment}.txt")
    with open(path) as fh:
        return fh.read()
