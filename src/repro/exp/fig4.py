"""Fig. 4 — throughput, p99, power, and EE versus packet rate
(REM and NAT; host processor vs SNIC processor).

This is the figure that motivates HAL: below the SNIC's SLO point
(~30 Gbps REM, ~41 Gbps NAT) the SNIC gives 31–38% better system energy
efficiency at comparable latency; above it, the SNIC drops packets and
p99 explodes while the host sails on.
"""

from __future__ import annotations

from typing import Sequence

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.exp.sweeps import rate_sweep

DEFAULT_RATES = (5.0, 10.0, 20.0, 30.0, 41.0, 50.0, 60.0, 80.0, 100.0)
FUNCTIONS = ("rem", "nat")


def run(
    config: RunConfig = DEFAULT_CONFIG,
    functions: Sequence[str] = FUNCTIONS,
    rates: Sequence[float] = DEFAULT_RATES,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig4",
        title="Throughput / p99 / power / EE vs packet rate (host vs SNIC)",
        columns=(
            "function",
            "system",
            "offered_gbps",
            "tp_gbps",
            "p99_us",
            "drop_rate",
            "power_w",
            "ee",
        ),
    )
    for function in functions:
        for kind in ("host", "snic"):
            for point in rate_sweep(kind, function, rates, config):
                m = point.metrics
                result.add_row(
                    function=function,
                    system=kind,
                    offered_gbps=point.rate_gbps,
                    tp_gbps=m.throughput_gbps,
                    p99_us=m.p99_latency_us,
                    drop_rate=m.drop_rate,
                    power_w=m.average_power_w,
                    ee=m.energy_efficiency,
                )
    result.add_note(
        "paper: SNIC beats host EE by 38%/31% below 30/41 Gbps (REM/NAT) "
        "without hurting p99; beyond those rates the SNIC drops packets and "
        "its p99 plateaus at the drop-limited value"
    )
    return result
