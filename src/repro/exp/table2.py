"""Table II — SLO throughput of the SNIC processor and its energy
efficiency at that point, normalised to the host.

For each function we search the highest SNIC rate whose p99 stays near
the low-load floor ("SLO TP"), then run the host at the same rate and
compare energy efficiency. The paper's own SLO TPs and EE ratios are
carried in the profiles, so the result table reports paper-vs-measured
side by side.
"""

from __future__ import annotations

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig, run_at_rate
from repro.exp.sweeps import find_slo_throughput
from repro.hw.profiles import get_profile
from repro.nf.registry import FUNCTION_NAMES


def run(config: RunConfig = DEFAULT_CONFIG, functions=None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table2",
        title="SNIC SLO throughput and normalised energy efficiency",
        columns=(
            "function",
            "slo_gbps",
            "paper_slo_gbps",
            "snic_ee",
            "host_ee",
            "ee_ratio",
            "paper_ee_ratio",
        ),
    )
    for function in functions or FUNCTION_NAMES:
        profile = get_profile(function)
        slo_rate, snic_metrics = find_slo_throughput(function, config=config)
        host_metrics = run_at_rate("host", function, max(slo_rate, 0.02), config)
        ee_ratio = (
            snic_metrics.energy_efficiency / host_metrics.energy_efficiency
            if host_metrics.energy_efficiency
            else None
        )
        result.add_row(
            function=function,
            slo_gbps=slo_rate,
            paper_slo_gbps=profile.slo_gbps,
            snic_ee=snic_metrics.energy_efficiency,
            host_ee=host_metrics.energy_efficiency,
            ee_ratio=ee_ratio,
            paper_ee_ratio=profile.paper_snic_ee,
        )
    result.add_note(
        "paper: SNIC improves system EE by 14-55% at its SLO point, but the "
        "SLO throughput is often far below line rate - hence load balancing"
    )
    return result
