"""Fig. 3 — average power and energy efficiency at the max-throughput point.

Each function runs on each processor at ~95% of its calibrated capacity
(the "maximum sustainable throughput point" of Fig. 2); we record the
system-wide average power and energy efficiency (throughput / power),
normalised SNIC-over-host as in the paper.
"""

from __future__ import annotations

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig, run_at_rate
from repro.hw.profiles import LINE_RATE_GBPS, get_profile
from repro.nf.registry import FUNCTION_NAMES

OPERATING_FRACTION = 0.95


def run(config: RunConfig = DEFAULT_CONFIG, functions=None) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig3",
        title="System power and energy efficiency at max-throughput points",
        columns=(
            "function",
            "host_gbps",
            "snic_gbps",
            "host_power_w",
            "snic_power_w",
            "power_ratio",
            "host_ee",
            "snic_ee",
            "ee_ratio",
        ),
    )
    for function in functions or FUNCTION_NAMES:
        profile = get_profile(function)
        host_rate = min(LINE_RATE_GBPS, profile.host.capacity_gbps) * OPERATING_FRACTION
        snic_rate = min(LINE_RATE_GBPS, profile.snic.capacity_gbps) * OPERATING_FRACTION
        host = run_at_rate("host", function, host_rate, config)
        snic = run_at_rate("snic", function, snic_rate, config)
        result.add_row(
            function=function,
            host_gbps=host.throughput_gbps,
            snic_gbps=snic.throughput_gbps,
            host_power_w=host.average_power_w,
            snic_power_w=snic.average_power_w,
            power_ratio=snic.average_power_w / host.average_power_w,
            host_ee=host.energy_efficiency,
            snic_ee=snic.energy_efficiency,
            ee_ratio=(
                snic.energy_efficiency / host.energy_efficiency
                if host.energy_efficiency
                else None
            ),
        )
    result.add_note(
        "paper: at max-throughput points the host's higher throughput "
        "dominates EE (73% higher on average for software functions); SNIC "
        "power stays within ~0.5-2% of system power"
    )
    return result
