"""Fig. 10 — BlueField-3 CPU vs Sapphire Rapids CPU.

The generational check of §VIII: the latest SNIC CPU still loses to the
latest host CPU for software-only functions (up to ~80% lower throughput
and much higher p99), with the caveat that lightweight functions (Count,
NAT) saturate the 100 Gbps client link on both platforms.
"""

from __future__ import annotations

from typing import Sequence

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.exp.sweeps import find_max_throughput
from repro.hw.profiles import FIG10_FUNCTIONS


def run(
    config: RunConfig = DEFAULT_CONFIG,
    functions: Sequence[str] = FIG10_FUNCTIONS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig10",
        title="BlueField-3 CPU vs Sapphire Rapids CPU (software functions)",
        columns=(
            "function",
            "bf3_max_gbps",
            "spr_max_gbps",
            "tp_ratio",
            "bf3_p99_us",
            "spr_p99_us",
            "bf3_ee",
            "spr_ee",
            "ee_ratio",
        ),
    )
    for function in functions:
        bf3_rate, bf3 = find_max_throughput("bf3", function, config)
        spr_rate, spr = find_max_throughput("spr", function, config)
        result.add_row(
            function=function,
            bf3_max_gbps=bf3.throughput_gbps,
            spr_max_gbps=spr.throughput_gbps,
            tp_ratio=(
                bf3.throughput_gbps / spr.throughput_gbps
                if spr.throughput_gbps
                else None
            ),
            bf3_p99_us=bf3.p99_latency_us,
            spr_p99_us=spr.p99_latency_us,
            bf3_ee=bf3.energy_efficiency,
            spr_ee=spr.energy_efficiency,
            ee_ratio=(
                bf3.energy_efficiency / spr.energy_efficiency
                if spr.energy_efficiency
                else None
            ),
        )
    result.add_note(
        "paper: BF-3 up to 80% lower throughput and up to 61x higher p99 "
        "than SPR; Count/NAT tie only because the 100 Gbps client saturates "
        "first - the capability gap persists, so HAL stays relevant"
    )
    return result
