"""Table I — host acceleration coverage of BlueField-2 functions."""

from __future__ import annotations

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.hw.capabilities import TABLE1


def run(config: RunConfig = DEFAULT_CONFIG) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table1",
        title="BF-2 functions supported by Intel ISA extensions and/or QAT",
        columns=("function", "isa", "qat"),
    )
    for entry in TABLE1:
        result.add_row(
            function=entry.function,
            isa="yes" if entry.isa else "",
            qat="yes" if entry.qat else "",
        )
    both = sum(1 for e in TABLE1 if e.isa and e.qat)
    result.add_note(
        f"{len(TABLE1)} functions total; {both} covered by both ISA and QAT, "
        f"{len(TABLE1) - both} by ISA extensions only"
    )
    return result
