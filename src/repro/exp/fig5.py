"""Fig. 5 — the software load balancer's throughput and p99 for NAT.

Client offers 80 Gbps; SLB runs with 1 or 4 dedicated forwarding cores
(the rest of the 8 SNIC cores process NAT) while Fwd_Th sweeps 20→60
Gbps. Reproduces §IV's findings: one core drops ~58-61% of traffic; four
cores reach ~80 Gbps at Fwd_Th=20 but with worse p99 than just letting
the SNIC drown, and throughput decays to ~53 Gbps at Fwd_Th=60.
"""

from __future__ import annotations

from typing import Sequence

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.runner import JobSpec, current_runner

OFFERED_GBPS = 80.0
THRESHOLDS = (20.0, 30.0, 40.0, 50.0, 60.0)
CORE_COUNTS = (1, 4)


def run(
    config: RunConfig = DEFAULT_CONFIG,
    thresholds: Sequence[float] = THRESHOLDS,
    core_counts: Sequence[int] = CORE_COUNTS,
    offered_gbps: float = OFFERED_GBPS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="fig5",
        title=f"SLB throughput and p99 for NAT at {offered_gbps:.0f} Gbps offered",
        columns=(
            "slb_cores",
            "fwd_th_gbps",
            "tp_gbps",
            "p99_us",
            "drop_rate",
            "forwarded_gbps",
        ),
    )
    # reference: the SNIC simply processing everything (no SLB), followed
    # by the (cores × threshold) grid — one batch, fanned out by the runner
    specs = [JobSpec.at_rate("snic", "nat", offered_gbps, config)]
    grid = [(cores, threshold) for cores in core_counts for threshold in thresholds]
    specs += [
        JobSpec.at_rate(
            "slb", "nat", offered_gbps, config,
            fwd_threshold_gbps=threshold, slb_cores=cores,
        )
        for cores, threshold in grid
    ]
    base_metrics, *grid_metrics = current_runner().map_metrics(specs)
    result.add_note(
        f"SNIC-only reference at {offered_gbps:.0f} Gbps: "
        f"tp={base_metrics.throughput_gbps:.1f} Gbps, "
        f"p99={base_metrics.p99_latency_us:.0f} us, "
        f"drops={base_metrics.drop_rate:.0%}"
    )

    for (cores, threshold), m in zip(grid, grid_metrics):
        forwarded_bits = (
            m.extras.get("forwarded_packets", 0.0) * config.packet_bytes * 8
        )
        result.add_row(
            slb_cores=cores,
            fwd_th_gbps=threshold,
            tp_gbps=m.throughput_gbps,
            p99_us=m.p99_latency_us,
            drop_rate=m.drop_rate,
            forwarded_gbps=forwarded_bits / config.duration_s / 1e9,
        )
    result.add_note(
        "paper: 1 core drops 58-61%; 4 cores ~80 Gbps at Fwd_Th=20 (p99 worse "
        "than no SLB at all), decaying to ~53 Gbps at Fwd_Th=60"
    )
    return result
