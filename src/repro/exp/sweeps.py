"""Rate sweeps and operating-point searches.

Three searches recur through the evaluation:

* :func:`rate_sweep` — run a system across a list of offered rates
  (Figs. 4, 5, 9);
* :func:`find_max_throughput` — the highest offered rate a system
  sustains without meaningful loss (Figs. 2, 10): binary search on the
  drop rate;
* :func:`find_slo_throughput` — Table II's "SLO TP": the highest rate at
  which p99 stays within a factor of the low-load latency floor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Tuple

from repro.exp.server import (
    DEFAULT_CONFIG,
    RunConfig,
    auto_batch,
    measure_base_p99_us,
)
from repro.hw.profiles import LINE_RATE_GBPS, bf3_profile, get_profile, spr_profile
from repro.runner import JobSpec, current_runner
from repro.sim.metrics import RunMetrics


def run_at_rate(
    kind: str,
    function: str,
    rate_gbps: float,
    config: RunConfig = DEFAULT_CONFIG,
    **kwargs,
) -> RunMetrics:
    """One constant-rate run, routed through the ambient runner so search
    probes hit the result cache when one is active."""
    return current_runner().run_one(
        JobSpec.at_rate(kind, function, rate_gbps, config, **kwargs)
    )


@dataclass
class SweepPoint:
    rate_gbps: float
    metrics: RunMetrics


def _pin_batch(config: RunConfig, reference_rate: float) -> RunConfig:
    """Fix the event batch size across a search/sweep so the measured
    latency floor does not shift with the probe rate."""
    if config.batch is not None:
        return config
    return replace(config, batch=auto_batch(reference_rate, config.packet_bytes))


def rate_sweep(
    kind: str,
    function: str,
    rates: Iterable[float],
    config: RunConfig = DEFAULT_CONFIG,
    **kwargs,
) -> List[SweepPoint]:
    rates = list(rates)
    config = _pin_batch(config, sorted(rates)[len(rates) // 2])
    specs = [
        JobSpec.at_rate(kind, function, rate, config, **kwargs) for rate in rates
    ]
    metrics = current_runner().map_metrics(specs)
    return [SweepPoint(rate, m) for rate, m in zip(rates, metrics)]


def find_max_throughput(
    kind: str,
    function: str,
    config: RunConfig = DEFAULT_CONFIG,
    max_drop_rate: float = 0.01,
    iterations: int = 7,
    hi_gbps: float = LINE_RATE_GBPS,
    **kwargs,
) -> Tuple[float, RunMetrics]:
    """Binary-search the highest sustainable offered rate.

    Returns (rate, metrics at that rate). The search brackets on the drop
    rate: a probe "passes" when fewer than ``max_drop_rate`` of offered
    packets are lost.
    """
    profile = get_profile(function)
    if kind in ("snic", "bf2"):
        engine = profile.snic
    elif kind == "bf3":
        engine = bf3_profile(function)
    elif kind == "spr":
        engine = spr_profile(function)
    else:
        engine = profile.host
    config = _pin_batch(config, min(hi_gbps, engine.capacity_gbps))
    # bracket around the engine's nominal capacity so the bisection
    # resolves 0.1-Gbps functions as well as line-rate ones; cooperative
    # systems (HAL/SLB) can exceed a single engine, so keep the full range
    cap = engine.capacity_gbps
    if kind in ("hal", "slb", "host-slb"):
        cap = profile.host.capacity_gbps + profile.snic.capacity_gbps
    hi = min(hi_gbps, max(cap * 1.3, 0.1))
    lo = min(0.02, hi / 10)
    best_rate, best_metrics = lo, None

    def sustainable(metrics: RunMetrics) -> bool:
        if metrics.drop_rate > max_drop_rate:
            return False
        # a rate is only sustainable if queues are not silently filling:
        # short probes of slow functions never drop, they just back up
        backlog = metrics.extras.get("final_backlog_packets", 0.0)
        return backlog <= max(64.0, 0.02 * max(1, metrics.generated_packets))

    # probe the ceiling first: many functions sustain line rate
    top = run_at_rate(kind, function, hi, config, **kwargs)
    if sustainable(top):
        return hi, top

    for _ in range(iterations):
        mid = (lo + hi) / 2
        metrics = run_at_rate(kind, function, mid, config, **kwargs)
        if sustainable(metrics):
            lo = mid
            best_rate, best_metrics = mid, metrics
        else:
            hi = mid
    if best_metrics is None:
        best_metrics = run_at_rate(kind, function, lo, config, **kwargs)
        best_rate = lo
    return best_rate, best_metrics


def find_slo_throughput(
    function: str,
    kind: str = "snic",
    config: RunConfig = DEFAULT_CONFIG,
    latency_factor: float = 1.8,
    max_drop_rate: float = 0.005,
    iterations: int = 7,
    base_p99_us: Optional[float] = None,
    **kwargs,
) -> Tuple[float, RunMetrics]:
    """Table II's SLO throughput: the highest rate where p99 stays within
    ``latency_factor`` of the low-load floor and (almost) nothing drops."""
    profile = get_profile(function)
    cap = profile.snic.capacity_gbps if kind == "snic" else profile.host.capacity_gbps
    config = _pin_batch(config, cap)
    if base_p99_us is None:
        base_p99_us = measure_base_p99_us(kind, function, config)
    limit_us = base_p99_us * latency_factor
    lo, hi = min(0.02, cap * 0.05), min(LINE_RATE_GBPS, cap * 1.15)
    best_rate, best_metrics = lo, None
    for _ in range(iterations):
        mid = (lo + hi) / 2
        metrics = run_at_rate(kind, function, mid, config, **kwargs)
        if metrics.p99_latency_us <= limit_us and metrics.drop_rate <= max_drop_rate:
            lo = mid
            best_rate, best_metrics = mid, metrics
        else:
            hi = mid
    if best_metrics is None:
        best_metrics = run_at_rate(kind, function, lo, config, **kwargs)
        best_rate = lo
    return best_rate, best_metrics


def geometric_rates(start: float, stop: float, points: int) -> List[float]:
    """Log-spaced rate ladder for sweep figures."""
    if points < 2 or start <= 0 or stop <= start:
        raise ValueError("need points >= 2 and 0 < start < stop")
    ratio = (stop / start) ** (1.0 / (points - 1))
    return [start * ratio**i for i in range(points)]
