"""``repro validate-flow`` — cross-validate flow mode against packet mode.

Runs a declared grid of cells (Fig. 5 cells, single-server HAL cells,
and a small rack) through **both** simulation modes via the ambient
runner and checks that throughput, p50/p99 latency and energy per
request agree within the tolerances declared in
:mod:`repro.flow.validate`.  On top of the agreement sweep the gate
re-verifies two side conditions:

* packet mode stayed the identity-hashed ground truth — the fixed fig5
  and rack smoke payload SHA-256s still match ``benchmarks/baseline.json``;
* the flow fast path keeps its event-rate headroom — ≥ 20 simulated
  wire packets per simulator event relative to packet mode at equal
  offered load (:func:`repro.bench.bench_flow`).

The grid deliberately avoids cells whose forward stage sits exactly at
the critical point ρ=1.0 and cells dominated by fluctuation-driven LBP
steering transients on an under-capacity SNIC; both regimes are
documented as known limitations in docs/ARCHITECTURE.md ("Simulation
modes").
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.exp.server import RunConfig
from repro.flow.validate import (
    DEFAULT_TOLERANCES,
    ValidationReport,
    compare_cell,
)
from repro.runner import JobSpec, current_runner

#: grids: name → simulated seconds per cell
GRID_DURATIONS: Dict[str, float] = {"smoke": 0.05, "full": 0.25}

#: minimum flow-over-packet event-rate headroom (wire packets carried
#: per simulator event at equal offered load)
MIN_EVENT_HEADROOM_X = 20.0


@dataclass(frozen=True)
class Cell:
    """One validation grid cell: a spec template run in both modes."""

    name: str
    op: str  # "at_rate" | "trace" | "rack"
    kind: str
    function: str
    rate_gbps: float = 0.0
    trace: str = ""
    params: Tuple[Tuple[str, object], ...] = ()

    def spec(self, config: RunConfig) -> JobSpec:
        kwargs = dict(self.params)
        if self.op == "at_rate":
            return JobSpec.at_rate(
                self.kind, self.function, self.rate_gbps, config, **kwargs
            )
        if self.op == "trace":
            return JobSpec.for_trace(
                self.kind, self.function, self.trace, config, **kwargs
            )
        return JobSpec.rack(
            self.kind, self.function, self.trace, config, **kwargs
        )


#: the CI gate: Fig. 5 reference + grid cells, the single-server HAL
#: cell, and a 2-server autoscaled rack on the Meta cache trace
SMOKE_CELLS: Tuple[Cell, ...] = (
    Cell("fig5/snic-ref nat@80", "at_rate", "snic", "nat", 80.0),
    Cell(
        "fig5/slb th40 c4 nat@80", "at_rate", "slb", "nat", 80.0,
        params=(("fwd_threshold_gbps", 40.0), ("slb_cores", 4)),
    ),
    Cell(
        "fig5/slb th40 c1 nat@80", "at_rate", "slb", "nat", 80.0,
        params=(("fwd_threshold_gbps", 40.0), ("slb_cores", 1)),
    ),
    Cell("hal nat@80", "at_rate", "hal", "nat", 80.0),
    Cell(
        "rack/hal x2 cache", "rack", "hal", "nat", trace="cache",
        params=(("servers", 2), ("policy", "packing")),
    ),
)

#: the nightly grid: more Fig. 5 thresholds, more functions/kinds, a
#: datacenter trace, and a second rack member kind.  The HAL rack runs
#: the web trace here: at full duration the 2x-scaled cache trace packs
#: the first member's SNIC into the near-critical regime, where packet
#: mode's token-bucket burst spill to the host is a stochastic effect
#: the fluid split does not reproduce (see docs/ARCHITECTURE.md).
FULL_CELLS: Tuple[Cell, ...] = tuple(
    cell for cell in SMOKE_CELLS if cell.name != "rack/hal x2 cache"
) + (
    Cell(
        "rack/hal x2 web", "rack", "hal", "nat", trace="web",
        params=(("servers", 2), ("policy", "packing")),
    ),
    Cell(
        "fig5/slb th50 c4 nat@80", "at_rate", "slb", "nat", 80.0,
        params=(("fwd_threshold_gbps", 50.0), ("slb_cores", 4)),
    ),
    Cell(
        "fig5/slb th60 c4 nat@80", "at_rate", "slb", "nat", 80.0,
        params=(("fwd_threshold_gbps", 60.0), ("slb_cores", 4)),
    ),
    Cell("hal kvs@60", "at_rate", "hal", "kvs", 60.0),
    Cell("host nat@60", "at_rate", "host", "nat", 60.0),
    Cell("host-slb nat@60", "at_rate", "host-slb", "nat", 60.0),
    Cell("trace/hal hadoop", "trace", "hal", "nat", trace="hadoop"),
    Cell(
        "rack/snic x2 cache", "rack", "snic", "nat", trace="cache",
        params=(("servers", 2), ("policy", "packing")),
    ),
)

GRIDS: Dict[str, Tuple[Cell, ...]] = {"smoke": SMOKE_CELLS, "full": FULL_CELLS}


def run_validation(
    grid: str = "smoke",
    config: Optional[RunConfig] = None,
    tolerances: Dict[str, float] = DEFAULT_TOLERANCES,
) -> ValidationReport:
    """Run every grid cell in both modes and compare the observables."""
    if grid not in GRIDS:
        raise ValueError(f"unknown validation grid {grid!r}; known: {sorted(GRIDS)}")
    cells = GRIDS[grid]
    if config is None:
        config = RunConfig(duration_s=GRID_DURATIONS[grid], seed=2024)
    packet_config = replace(config, sim_mode="packet")
    flow_config = replace(config, sim_mode="flow")
    specs = [cell.spec(packet_config) for cell in cells]
    specs += [cell.spec(flow_config) for cell in cells]
    results = current_runner().map_metrics(specs)
    packet_results, flow_results = results[: len(cells)], results[len(cells):]
    report = ValidationReport(grid=grid)
    for cell, packet_metrics, flow_metrics in zip(
        cells, packet_results, flow_results
    ):
        report.cells.append(
            compare_cell(cell.name, packet_metrics, flow_metrics, tolerances)
        )
    report.add_note(
        f"duration {config.duration_s:g}s, seed {config.seed}, "
        f"flow interval {config.flow_interval_s * 1e6:g}us"
    )
    return report


def check_packet_identity(
    report: ValidationReport, baseline_path: Optional[str] = None
) -> bool:
    """Packet-mode ground truth must stay byte-identical to the
    committed baseline (same invariant as benchmarks/check_identity.py)."""
    from repro.bench import bench_fig5, bench_rack

    if baseline_path is None:
        baseline_path = str(
            pathlib.Path(__file__).resolve().parents[3]
            / "benchmarks"
            / "baseline.json"
        )
    path = pathlib.Path(baseline_path)
    if not path.exists():
        report.add_note(f"identity: SKIPPED (no baseline at {baseline_path})")
        return True
    identity = json.loads(path.read_text())["identity"]
    ok = True
    for label, key, run in (
        ("fig5", "fig5_payload_sha256", lambda: bench_fig5(repeats=1)),
        ("rack", "rack_payload_sha256", bench_rack),
    ):
        if key not in identity:
            continue
        current = run()["payload_sha256"]
        if current == identity[key]:
            report.add_note(f"identity: {label} payload sha OK ({current[:12]}…)")
        else:
            report.add_note(
                f"identity: FAIL — {label} packet payload sha moved "
                f"(baseline {identity[key][:12]}…, current {current[:12]}…)"
            )
            ok = False
    return ok


def check_event_headroom(report: ValidationReport) -> bool:
    """Flow mode must carry ≥ 20x the wire packets per simulator event."""
    from repro.bench import bench_flow

    flow = bench_flow(repeats=1)
    headroom = flow["event_headroom_x"]
    ok = headroom >= MIN_EVENT_HEADROOM_X
    report.add_note(
        f"event headroom: {headroom:.1f}x (wall speedup "
        f"{flow['wall_speedup_x']:.1f}x, floor {MIN_EVENT_HEADROOM_X:.0f}x)"
        + ("" if ok else " — FAIL")
    )
    return ok


def validate_flow(
    grid: str = "smoke",
    config: Optional[RunConfig] = None,
    baseline_path: Optional[str] = None,
    skip_side_checks: bool = False,
) -> Tuple[ValidationReport, bool]:
    """The full gate: agreement sweep + identity + headroom."""
    report = run_validation(grid, config)
    ok = report.passed
    if not skip_side_checks:
        ok = check_packet_identity(report, baseline_path) and ok
        ok = check_event_headroom(report) and ok
    return report, ok


__all__ = [
    "Cell",
    "GRIDS",
    "GRID_DURATIONS",
    "MIN_EVENT_HEADROOM_X",
    "SMOKE_CELLS",
    "FULL_CELLS",
    "run_validation",
    "check_packet_identity",
    "check_event_headroom",
    "validate_flow",
]
