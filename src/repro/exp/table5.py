"""Table V — the full datacenter-trace grid.

Three Meta traces (web / cache / Hadoop) × ten workloads (six single
functions + four two-stage pipelines) × three systems (SNIC-only,
host-only, HAL), reporting max/avg throughput, p99 latency, and average
system power — the paper's main evaluation table. Stateful functions
(Count, EMA) run with the CXL-emulated coherent state domain under HAL,
following §V-C / §VII-B.
"""

from __future__ import annotations

from typing import Sequence

from repro.exp.report import ExperimentResult
from repro.exp.server import DEFAULT_CONFIG, RunConfig
from repro.nf.pipeline import PIPELINE_NAMES
from repro.nf.registry import TABLE5_SINGLE_FUNCTIONS
from repro.runner import JobSpec, current_runner

TRACES = ("web", "cache", "hadoop")
WORKLOADS = tuple(TABLE5_SINGLE_FUNCTIONS) + tuple(PIPELINE_NAMES)
SYSTEMS = ("snic", "host", "hal")


def run(
    config: RunConfig = DEFAULT_CONFIG,
    traces: Sequence[str] = TRACES,
    workloads: Sequence[str] = WORKLOADS,
    systems: Sequence[str] = SYSTEMS,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="table5",
        title="Trace-driven evaluation: SNIC vs host vs HAL",
        columns=(
            "trace",
            "function",
            "system",
            "max_gbps",
            "avg_gbps",
            "p99_us",
            "power_w",
            "ee",
            "snic_share",
        ),
    )
    # the paper's biggest grid (3 traces × 13 workloads × 3 systems):
    # every cell is independent, so hand the whole thing to the runner
    grid = [
        (trace, function, kind)
        for trace in traces
        for function in workloads
        for kind in systems
    ]
    specs = [
        JobSpec.for_trace(kind, function, trace, config)
        for trace, function, kind in grid
    ]
    for (trace, function, kind), m in zip(
        grid, current_runner().map_metrics(specs)
    ):
        result.add_row(
            trace=trace,
            function=function,
            system=kind,
            max_gbps=m.extras.get("max_window_gbps", m.throughput_gbps),
            avg_gbps=m.throughput_gbps,
            p99_us=m.p99_latency_us,
            power_w=m.average_power_w,
            ee=m.energy_efficiency,
            snic_share=m.snic_share,
        )
    result.add_note(
        "paper averages across this grid: HAL beats host-only EE by ~28-35% "
        "and max throughput by ~5-13%, and beats SNIC-only p99 by 64-94%"
    )
    return result


def summarize(result: ExperimentResult) -> ExperimentResult:
    """Per-trace geometric summaries, like the §VII-B prose."""
    summary = ExperimentResult(
        experiment="table5-summary",
        title="HAL vs host-only and SNIC-only, per trace",
        columns=(
            "trace",
            "hal_ee_vs_host",
            "hal_maxtp_vs_host",
            "hal_p99_vs_snic",
        ),
    )
    by_key = {}
    for row in result.rows:
        by_key[(row["trace"], row["function"], row["system"])] = row
    traces = sorted({row["trace"] for row in result.rows})
    functions = sorted({row["function"] for row in result.rows})
    for trace in traces:
        ee_gains, tp_gains, p99_cuts = [], [], []
        for function in functions:
            hal = by_key.get((trace, function, "hal"))
            host = by_key.get((trace, function, "host"))
            snic = by_key.get((trace, function, "snic"))
            if not (hal and host and snic):
                continue
            if host["ee"]:
                ee_gains.append(hal["ee"] / host["ee"])
            if host["max_gbps"]:
                tp_gains.append(hal["max_gbps"] / host["max_gbps"])
            if snic["p99_us"]:
                p99_cuts.append(hal["p99_us"] / snic["p99_us"])
        if not ee_gains:
            continue
        summary.add_row(
            trace=trace,
            hal_ee_vs_host=sum(ee_gains) / len(ee_gains),
            hal_maxtp_vs_host=sum(tp_gains) / len(tp_gains),
            hal_p99_vs_snic=sum(p99_cuts) / len(p99_cuts),
        )
    return summary
