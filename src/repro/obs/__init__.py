"""Observability: telemetry probes, decision tracing, trace export.

The evaluation's numbers only mean something when the *time-resolved*
behaviour behind them is visible — Fwd_Th adapting under a Meta trace,
Rx-queue occupancy against the LBP watermark band, DCMI power samples.
This package is the layer that captures that behaviour:

* :mod:`repro.obs.tracer` — the :class:`Tracer` protocol.  The default
  :class:`NullTracer` is a no-op (hot paths carry a single ``is not
  None`` branch when untraced); a :class:`RecordingTracer` captures
  spans, instants, and counters stamped with **simulated** time, so
  traces are deterministic and diffable.
* :mod:`repro.obs.probes` — a registry of named counters, gauges, and
  bounded time-series (reusing :class:`repro.sim.metrics.TimeSeries`).
* :mod:`repro.obs.export` — Chrome/Perfetto trace-event JSON plus
  CSV/JSON time-series dumps.
* :mod:`repro.obs.flight` — the structured "flight recorder" run
  summary that rides along in :class:`ExperimentResult` payloads.
* :mod:`repro.obs.log` — structured ``key=value`` logging for the
  runner/CLI/bench progress output.
* :mod:`repro.obs.journal` — the append-only JSONL run journal written
  at every fabric epoch barrier (crash-truncation-safe, epoch-stamped).
* :mod:`repro.obs.slo` — declarative SLO rules evaluated streaming over
  the fleet series; verdicts land in the flight recorder.
* :mod:`repro.obs.fleet` — the fleet telemetry plane for sharded fabric
  runs: per-shard probe deltas over the epoch barrier, bounded
  downsampled fleet series, live ticker, Prometheus snapshot, and the
  multi-process Perfetto export.

The one hard invariant: **untraced runs are bit-identical** to a build
without this package — no extra simulation events, no extra RNG draws,
no payload or cache-key changes.  Everything here activates only inside
a :func:`use_session` block (the CLI's ``repro trace`` command).
"""

from repro.obs.fleet import DownsampledSeries, FleetTelemetry, ProbeDeltaTap
from repro.obs.flight import FlightRecorder
from repro.obs.journal import RunJournal, read_journal, summarize_journal
from repro.obs.probes import ProbeRegistry
from repro.obs.slo import SloMonitor, SloRule, parse_slo_rule
from repro.obs.tracer import (
    NULL_SESSION,
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Tracer,
    TraceSession,
    current_session,
    use_session,
)

__all__ = [
    "DownsampledSeries",
    "FleetTelemetry",
    "FlightRecorder",
    "ProbeDeltaTap",
    "ProbeRegistry",
    "RunJournal",
    "SloMonitor",
    "SloRule",
    "parse_slo_rule",
    "read_journal",
    "summarize_journal",
    "NULL_SESSION",
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Tracer",
    "TraceSession",
    "current_session",
    "use_session",
]
