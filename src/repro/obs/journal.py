"""The run journal: an append-only JSONL stream of a fabric run.

A multi-hour sharded fabric run used to be a telemetry black hole — the
operator saw nothing between launch and the final table.  The journal
is the durable half of the fleet telemetry plane: one JSON object per
line, written and flushed at every epoch barrier, so

* a crash (or ``kill -9``) loses at most the half-written last line —
  :func:`read_journal` tolerates exactly that truncation;
* records are **epoch-stamped** (simulated seconds, never wall clock),
  so two runs of the same spec produce byte-identical journals at every
  worker count — journals diff like any other payload;
* the stream is consumable while the run is still going (``tail -f``,
  or the ``repro journal`` summarizer on a live file).

Record kinds (all carry ``"kind"``):

``meta``
    One per run (a journal may hold several runs back to back): label,
    fabric shape, epoch count/length, schema version.
``epoch``
    One per epoch barrier: the aggregated fleet record (offered /
    admitted / shed Gbps, watts, awake/draining servers, hot racks,
    throttle, occupancy, backlog, p99, flap counters) plus compact
    per-rack arrays.
``slo``
    One per epoch in which an SLO rule is violated (rule, value,
    threshold).
``finish``
    One per run: final fleet aggregates and the SLO verdict list.
``interrupt``
    At most one per run, *instead of* ``finish``: the run drained to an
    epoch barrier and stopped early (signal name, epochs completed,
    whether a checkpoint makes it resumable).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO, Tuple

SCHEMA = 1


def encode_record(record: Dict[str, Any]) -> str:
    """One canonical JSONL line (sorted keys, no whitespace)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class RunJournal:
    """Append-only JSONL writer, flushed per record (crash-safe)."""

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        self.records_written = 0
        self._fh: Optional[TextIO] = open(path, "a" if append else "w")

    def write(self, record: Dict[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"journal {self.path} already closed")
        self._fh.write(encode_record(record) + "\n")
        self._fh.flush()
        self.records_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_journal(path: str) -> Tuple[List[Dict[str, Any]], bool]:
    """Parse a journal; returns ``(records, truncated)``.

    A half-written **last** line (the crash case the flush-per-record
    protocol permits) is dropped and reported as ``truncated=True``; a
    malformed line anywhere else is a real corruption and raises.
    """
    records: List[Dict[str, Any]] = []
    truncated = False
    with open(path) as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                truncated = True
                break
            raise ValueError(
                f"{path}:{index + 1}: corrupt journal line (not the last "
                f"line, so not crash truncation): {line[:80]!r}"
            )
        if not isinstance(record, dict):
            raise ValueError(f"{path}:{index + 1}: journal line is not an object")
        records.append(record)
    return records, truncated


def summarize_journal(
    records: List[Dict[str, Any]], truncated: bool = False
) -> List[str]:
    """Human-readable digest of a journal, one run per block."""
    lines: List[str] = []
    runs: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "meta":
            runs.append(
                {
                    "meta": record,
                    "epochs": [],
                    "slo": [],
                    "finish": None,
                    "interrupt": None,
                }
            )
        elif not runs:
            continue  # tolerate a journal whose head was truncated away
        elif kind == "epoch":
            runs[-1]["epochs"].append(record)
        elif kind == "slo":
            runs[-1]["slo"].append(record)
        elif kind == "finish":
            runs[-1]["finish"] = record
        elif kind == "interrupt":
            runs[-1]["interrupt"] = record
    for run in runs:
        meta = run["meta"]
        epochs = run["epochs"]
        lines.append(
            f"run {meta.get('label', '?')}: {meta.get('racks', '?')} racks, "
            f"{len(epochs)}/{meta.get('epochs', '?')} epochs journaled "
            f"(epoch {meta.get('epoch_s', 0) * 1e3:g} ms)"
        )
        if epochs:
            power = [e["power_w"] for e in epochs if "power_w" in e]
            shed = [e["shed_gbps"] for e in epochs if "shed_gbps" in e]
            p99 = [e["p99_us"] for e in epochs if "p99_us" in e]
            if power:
                lines.append(
                    f"  power_w mean {sum(power) / len(power):.1f} "
                    f"max {max(power):.1f}"
                )
            if shed:
                lines.append(
                    f"  shed_gbps mean {sum(shed) / len(shed):.3f} "
                    f"max {max(shed):.3f}"
                )
            if p99:
                lines.append(f"  p99_us max {max(p99):.1f}")
        if run["slo"]:
            lines.append(f"  slo violations journaled: {len(run['slo'])}")
        finish = run["finish"]
        if finish is not None:
            verdicts = finish.get("slo", [])
            for verdict in verdicts:
                status = "ok" if verdict.get("passed") else "FAIL"
                lines.append(
                    f"  slo {verdict.get('rule')}: {status} "
                    f"({verdict.get('violations', 0)}/"
                    f"{verdict.get('epochs', 0)} epochs violated, "
                    f"worst {verdict.get('worst', 0.0):.4g})"
                )
        elif run["interrupt"] is not None:
            interrupt = run["interrupt"]
            tail = (
                "checkpointed, resumable"
                if interrupt.get("resumable")
                else "no checkpoint"
            )
            signame = interrupt.get("signal") or "pause"
            lines.append(
                f"  interrupted by {signame} after epoch "
                f"{interrupt.get('epoch', '?')} ({tail})"
            )
        elif epochs:
            lines.append("  (no finish record: run interrupted)")
    if truncated:
        lines.append("journal truncated mid-line (crash tail dropped)")
    if not runs:
        lines.append("empty journal (no meta records)")
    return lines
