"""Named probe registry: counters, gauges, bounded time-series.

Trace events answer "what happened when"; probes answer "what did the
run add up to" — monotonically increasing counters, last-value gauges,
and sampled time-series stamped with simulated time.  The series reuse
:class:`repro.sim.metrics.TimeSeries` (the same container the power
model's DCMI samples and the Fig. 8 rate snapshots use) under a hard
sample bound so long runs stay bounded in memory.

Naming scheme (see docs/ARCHITECTURE.md → Observability): probe names
are ``/``-separated paths, ``<scope>/<component>/<metric>``, e.g.
``run0:hal/nat/offered_gbps`` or ``profiler/nat/p99_us``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.sim.metrics import TimeSeries


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class SeriesProbe:
    """A bounded, simulated-time-stamped series.

    Past ``max_samples`` further samples are counted but not stored —
    the stored prefix plus the drop count is still diagnostic, and the
    bound keeps ``--probes`` dumps of long runs tractable.
    """

    def __init__(self, name: str, max_samples: int = 10_000) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.series = TimeSeries(name=name)
        self.max_samples = max_samples
        self.dropped = 0

    @property
    def name(self) -> str:
        return self.series.name

    def sample(self, t: float, value: float) -> None:
        if len(self.series) >= self.max_samples:
            self.dropped += 1
            return
        self.series.append(t, value)

    def __len__(self) -> int:
        return len(self.series)


class ProbeRegistry:
    """Registry of named probes; names are created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._series: Dict[str, SeriesProbe] = {}

    # -- accessors (create on first use) --------------------------------
    def counter(self, name: str) -> Counter:
        probe = self._counters.get(name)
        if probe is None:
            probe = self._counters[name] = Counter(name)
        return probe

    def gauge(self, name: str) -> Gauge:
        probe = self._gauges.get(name)
        if probe is None:
            probe = self._gauges[name] = Gauge(name)
        return probe

    def series(self, name: str, max_samples: int = 10_000) -> SeriesProbe:
        probe = self._series.get(name)
        if probe is None:
            probe = self._series[name] = SeriesProbe(name, max_samples)
        return probe

    def series_names(self) -> List[str]:
        return sorted(self._series)

    # -- deterministic iteration -----------------------------------------
    # Every exported view walks probes in sorted-name order, regardless
    # of creation order, so journals, CSV dumps and shipped deltas diff
    # cleanly across runs and worker counts.

    def counters(self) -> Iterator[Tuple[str, Counter]]:
        for name in sorted(self._counters):
            yield name, self._counters[name]

    def gauges(self) -> Iterator[Tuple[str, Gauge]]:
        for name in sorted(self._gauges):
            yield name, self._gauges[name]

    def series_items(self) -> Iterator[Tuple[str, SeriesProbe]]:
        for name in sorted(self._series):
            yield name, self._series[name]

    # -- export ----------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump of every probe's current state (sorted names)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "series": {
                n: {
                    "times": list(p.series.times),
                    "values": list(p.series.values),
                    "dropped": p.dropped,
                }
                for n, p in sorted(self._series.items())
            },
        }

    def to_csv(self, names: Optional[List[str]] = None) -> str:
        """Long-form CSV (``series,time_s,value``) of the time-series.

        Without ``names``, series appear in sorted-name order (stable
        across runs); an explicit ``names`` list is honoured as given.
        """
        selected = names if names is not None else self.series_names()
        lines = ["series,time_s,value"]
        for name in selected:
            probe = self._series.get(name)
            if probe is None:
                raise KeyError(f"unknown series probe {name!r}")
            for t, v in zip(probe.series.times, probe.series.values):
                lines.append(f"{name},{t!r},{v!r}")
        return "\n".join(lines) + "\n"
