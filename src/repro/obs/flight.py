"""The flight recorder: a structured summary of every traced run.

Where the trace answers "show me the timeline", the flight recorder
answers "what did each run do, in one JSON object" — per-run identity
(system kind, function, offered rate), outcome aggregates (delivered /
dropped packets, power, LBP decision count, final ``Fwd_Th``), and the
capture-tap invariant verdicts (client-visible identity, checksum
validity) when ``--capture`` is active.

It serializes into :class:`~repro.exp.report.ExperimentResult` payloads
under the optional ``obs`` key — absent for untraced runs, so untraced
payload bytes and runner cache entries are unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List


class FlightRecorder:
    """Accumulates one summary dict per traced simulation run."""

    SCHEMA = 1

    def __init__(self) -> None:
        self.runs: List[Dict[str, Any]] = []

    def record_run(self, label: str, **fields: Any) -> Dict[str, Any]:
        """Append one run summary; returns it for further annotation."""
        summary: Dict[str, Any] = {"label": label}
        summary.update(fields)
        self.runs.append(summary)
        return summary

    def __len__(self) -> int:
        return len(self.runs)

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": self.SCHEMA, "runs": [dict(run) for run in self.runs]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlightRecorder":
        recorder = cls()
        recorder.runs = [dict(run) for run in data.get("runs", [])]
        return recorder

    def summary_lines(self) -> List[str]:
        """Human-readable digest for CLI output."""
        lines = []
        for run in self.runs:
            parts = [run["label"]]
            for key in ("throughput_gbps", "p99_latency_us", "average_power_w"):
                if key in run:
                    parts.append(f"{key}={run[key]:.3g}")
            if "lbp_decisions" in run:
                parts.append(f"lbp_decisions={run['lbp_decisions']}")
            captures = run.get("captures")
            if captures:
                ok = all(
                    c.get("checksums_ok", True) and c.get("single_source_ok", True)
                    for c in captures
                )
                parts.append(f"capture_invariants={'ok' if ok else 'VIOLATED'}")
            verdicts = run.get("slo")
            if verdicts:
                failed = sum(1 for v in verdicts if not v.get("passed"))
                parts.append(
                    "slo=ok" if failed == 0 else f"slo=FAIL({failed} rule"
                    + ("s)" if failed != 1 else ")")
                )
            lines.append("  ".join(parts))
            if verdicts:
                for verdict in verdicts:
                    if verdict.get("passed"):
                        continue
                    lines.append(
                        f"    slo {verdict.get('rule')}: "
                        f"{verdict.get('violations', 0)}/"
                        f"{verdict.get('epochs', 0)} epochs violated, "
                        f"worst {verdict.get('worst', 0.0):.4g} "
                        f"(first at epoch {verdict.get('first_violation_epoch')})"
                    )
        return lines
