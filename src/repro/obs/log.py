"""Structured logging for runner/CLI/bench progress output.

One small helper instead of scattered ``print(..., file=sys.stderr)``:
every line is machine-parseable ``logger event key=value ...``, level
filtering is global (the CLI's ``--verbose``/``-q`` flags), and tests
can capture and parse the output deterministically.

Result *tables* (the product of an experiment run) still go to stdout
via plain ``print`` — this module is for progress and diagnostics,
which belong on stderr.

Worker processes (the sharded runner's long-lived shard workers) do not
share the parent's stderr ordering: raw writes from K workers interleave
mid-line.  :func:`set_capture` diverts emitted records into a buffer the
worker ships back over its pipe with every protocol reply; the parent
replays them through its own logger (see
:meth:`StructuredLogger.emit_at`), tagged with the worker's shard block.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, Optional, TextIO, Tuple

#: one captured record: (logger name, level, event, fields)
LogRecord = Tuple[str, int, str, Dict[str, Any]]

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LEVELS: Dict[str, int] = {
    "debug": DEBUG,
    "info": INFO,
    "warning": WARNING,
    "error": ERROR,
}

_level = INFO
_stream: TextIO = sys.stderr
_capture: Optional[Callable[[LogRecord], None]] = None


def set_level(level: object) -> None:
    """Set the global threshold (a name from :data:`LEVELS` or an int)."""
    global _level
    if isinstance(level, str):
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; known: {sorted(LEVELS)}")
        _level = LEVELS[level]
    else:
        _level = int(level)  # type: ignore[arg-type]


def get_level() -> int:
    return _level


def set_stream(stream: TextIO) -> None:
    """Redirect log output (tests point this at a buffer)."""
    global _stream
    _stream = stream


def set_capture(sink: Optional[Callable[[LogRecord], None]]) -> None:
    """Divert records that pass the level filter into ``sink`` instead of
    the stream (``None`` restores direct output).  Worker processes
    install a buffer here so their records travel the pipe instead of
    interleaving raw on a shared stderr."""
    global _capture
    _capture = sink


def format_value(value: Any) -> str:
    """One ``key=value`` right-hand side: floats compact, strings quoted
    only when they contain whitespace or ``=``/``"``."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if text == "" or any(c in text for c in ' \t"='):
        return '"' + text.replace('"', '\\"') + '"'
    return text


def kv_line(logger: str, event: str, fields: Dict[str, Any]) -> str:
    parts = [logger, event]
    parts.extend(f"{key}={format_value(value)}" for key, value in fields.items())
    return " ".join(parts)


class StructuredLogger:
    """A named logger emitting ``key=value`` lines to the shared stream."""

    def __init__(self, name: str) -> None:
        self.name = name

    def _emit(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if level < _level:
            return
        if _capture is not None:
            _capture((self.name, level, event, dict(fields)))
            return
        try:
            print(kv_line(self.name, event, fields), file=_stream, flush=True)
        except ValueError:
            # the stream can close under a logging thread (a daemon job
            # finishing while the process tears down); drop, don't die
            pass

    def emit_at(self, level: int, event: str, **fields: Any) -> None:
        """Emit at an explicit numeric level (the replay path for records
        captured in worker processes)."""
        self._emit(level, event, fields)

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit(ERROR, event, fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(name: str) -> StructuredLogger:
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = StructuredLogger(name)
    return logger
