"""Trace exporters: Chrome/Perfetto trace-event JSON, CSV/JSON series.

The trace-event format (the ``chrome://tracing`` / Perfetto "JSON
object format") models a trace as processes containing threads; we map
one simulation **run** to one process (each run has its own clock
starting at zero, so per-process timestamps stay monotone) and one
probe **track** — an engine core, the LBP decision stream, the power
rail — to one thread.  Timestamps are simulated microseconds.

Open an exported file at https://ui.perfetto.dev (drag and drop) or
``chrome://tracing``.

:func:`validate_chrome_trace` is the schema check the property tests
and the CI trace-smoke job share: structural validity plus per-track
timestamp monotonicity.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.probes import ProbeRegistry
from repro.obs.tracer import PH_COUNTER, PH_INSTANT, PH_SPAN, TraceSession

#: simulated seconds → trace-event microseconds
_US = 1e6


def _meta(name: str, pid: int, tid: int, value: str) -> Dict[str, Any]:
    return {
        "name": name,
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": value},
    }


def chrome_trace_events(session: TraceSession) -> List[Dict[str, Any]]:
    """Flatten a session into a trace-event list.

    Events within a run are sorted by simulated time (stable, so
    same-timestamp events keep emission order), which makes every
    (pid, tid) track monotone by construction.
    """
    out: List[Dict[str, Any]] = []
    for pid, run in enumerate(session.runs, start=1):
        out.append(_meta("process_name", pid, 0, run.label))
        tids: Dict[str, int] = {}
        events = sorted(run.events, key=lambda e: e[3])
        body: List[Dict[str, Any]] = []
        for event in events:
            ph, track = event[0], event[1]
            tid = tids.get(track)
            if tid is None:
                tid = tids[track] = len(tids) + 1
                out.append(_meta("thread_name", pid, tid, track))
            record: Dict[str, Any] = {
                "name": event[2],
                "ph": ph,
                "pid": pid,
                "tid": tid,
                "ts": event[3] * _US,
            }
            if ph == PH_COUNTER:
                record["args"] = {"value": event[4]}
            elif ph == PH_SPAN:
                record["dur"] = event[4] * _US
                if event[5]:
                    record["args"] = dict(event[5])
            elif ph == PH_INSTANT:
                record["s"] = "t"  # thread-scoped instant
                if event[4]:
                    record["args"] = dict(event[4])
            body.append(record)
        out.extend(body)
    return out


def to_chrome_trace(session: TraceSession) -> Dict[str, Any]:
    """The full JSON-object-format trace, flight summary included."""
    return {
        "traceEvents": chrome_trace_events(session),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "clock": "simulated",
            "runs": len(session.runs),
            "dropped_events": session.total_dropped(),
            "flight": session.flight.to_dict(),
        },
    }


def write_chrome_trace(session: TraceSession, path: str) -> Dict[str, Any]:
    trace = to_chrome_trace(session)
    with open(path, "w") as fh:
        json.dump(trace, fh, separators=(",", ":"))
        fh.write("\n")
    return trace


_KNOWN_PHASES = {"M", PH_INSTANT, PH_COUNTER, PH_SPAN}


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Schema + monotonicity check; returns a list of problems (empty
    when the trace is valid)."""
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: Dict[Tuple[int, int], float] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == PH_SPAN and event.get("dur", 0) < 0:
            problems.append(f"event {i}: negative span duration")
        key = (event.get("pid"), event.get("tid"))
        if ts < last_ts.get(key, 0.0):
            problems.append(
                f"event {i}: ts {ts} goes backwards on track {key} "
                f"(last {last_ts[key]})"
            )
        else:
            last_ts[key] = ts
    return problems


def trace_tracks(trace: Dict[str, Any]) -> List[str]:
    """Thread (track) names declared in the trace, in order."""
    return [
        e["args"]["name"]
        for e in trace.get("traceEvents", [])
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    ]


def trace_processes(trace: Dict[str, Any]) -> List[str]:
    """Process names declared in the trace, in order — one per run; the
    fleet exporter emits one process per rack plus the control plane."""
    return [
        e["args"]["name"]
        for e in trace.get("traceEvents", [])
        if e.get("ph") == "M" and e.get("name") == "process_name"
    ]


# -- time-series dumps ----------------------------------------------------


def write_probes_csv(registry: ProbeRegistry, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(registry.to_csv())


def write_probes_json(registry: ProbeRegistry, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
        fh.write("\n")


def counters_to_registry(
    session: TraceSession, registry: Optional[ProbeRegistry] = None
) -> ProbeRegistry:
    """Mirror every counter trace event into series probes, one series
    per ``run-label/track/name`` — the bridge from a recorded trace to
    the CSV/JSON dump format."""
    registry = registry if registry is not None else ProbeRegistry()
    for run in session.runs:
        for event in sorted(run.events, key=lambda e: e[3]):
            if event[0] == PH_COUNTER:
                name = f"{run.label}/{event[1]}/{event[2]}"
                registry.series(name).sample(event[3], event[4])
    return registry
