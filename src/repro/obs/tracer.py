"""Tracer protocol, recording tracer, and the ambient trace session.

Design constraints, in priority order:

1. **Zero overhead untraced.**  Components store ``tracer = None`` by
   default and guard every emission with ``if tracer is not None`` —
   one pointer comparison, no allocation, no call.  The bench gate
   (±30 % vs ``benchmarks/baseline.json``) enforces this stays cheap.
2. **Simulated-time stamps.**  Every event carries the simulation
   clock, not wall time, so a traced run is deterministic: the same
   spec produces the same trace, byte for byte, and two traces diff.
3. **Bounded memory.**  A :class:`RecordingTracer` stops appending past
   ``max_events`` and counts what it dropped; a runaway trace degrades
   to a truncated one, never to an OOM.

A :class:`TraceSession` groups one tracer per simulation run (an
experiment is a grid of independent runs, each with its own clock
starting at zero) — the exporter maps runs to Perfetto *processes* and
tracks to *threads*, which keeps per-track timestamps monotone.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.flight import FlightRecorder
from repro.obs.probes import ProbeRegistry

# event-tuple phase tags (match the Chrome trace-event "ph" values)
PH_INSTANT = "i"
PH_COUNTER = "C"
PH_SPAN = "X"


class Tracer:
    """The tracing protocol.

    ``enabled`` is a class attribute components may branch on; the
    emission methods take explicit simulated-time stamps so callers
    never need a clock reference of their own.
    """

    enabled = False

    def instant(
        self, track: str, name: str, ts: float, args: Optional[Dict[str, Any]] = None
    ) -> None:
        """A point event (e.g. one LBP decision) at simulated ``ts``."""

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        """One sample of a named counter/gauge series."""

    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A duration event covering ``[start, end]`` simulated seconds."""

    def set_label(self, label: str) -> None:
        """Rename the run this tracer records (e.g. once the rate is known)."""


class NullTracer(Tracer):
    """The default: records nothing, allocates nothing."""

    enabled = False


#: the shared no-op instance; safe because it is stateless
NULL_TRACER = NullTracer()


class RecordingTracer(Tracer):
    """Captures events for one simulation run, bounded by ``max_events``.

    Events are stored as plain tuples ``(ph, track, name, ts, ...)`` —
    the cheapest append Python offers — and interpreted only at export
    time.  ``ts``/``start`` are simulated seconds.
    """

    enabled = True

    def __init__(self, label: str, max_events: int = 200_000, index: int = 0) -> None:
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.index = index
        self.label = f"run{index}:{label}"
        self.max_events = max_events
        self.events: List[Tuple] = []
        self.dropped = 0

    def _room(self) -> bool:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        return True

    def instant(
        self, track: str, name: str, ts: float, args: Optional[Dict[str, Any]] = None
    ) -> None:
        if self._room():
            self.events.append((PH_INSTANT, track, name, ts, args))

    def counter(self, track: str, name: str, ts: float, value: float) -> None:
        if self._room():
            self.events.append((PH_COUNTER, track, name, ts, value))

    def span(
        self,
        track: str,
        name: str,
        start: float,
        end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        if self._room():
            self.events.append((PH_SPAN, track, name, start, end - start, args))

    def set_label(self, label: str) -> None:
        """Re-label this run, keeping the unique ``runN:`` prefix."""
        self.label = f"run{self.index}:{label}"

    def tracks(self) -> List[str]:
        """Distinct track names, in first-emission order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event[1])
        return list(seen)


class TraceSession:
    """One tracing context: a tracer per run, shared probes, a flight
    recorder, and the capture-tap configuration.

    ``capture_packets`` > 0 asks systems to attach
    :class:`~repro.net.capture.CaptureTap` windows of that many packets
    at the eSwitch ports and the client egress.
    """

    enabled = True

    def __init__(
        self,
        max_events_per_run: int = 200_000,
        capture_packets: int = 0,
        probe_interval_s: Optional[float] = None,
    ) -> None:
        if capture_packets < 0:
            raise ValueError("capture_packets cannot be negative")
        self.max_events_per_run = max_events_per_run
        self.capture_packets = capture_packets
        self.probe_interval_s = probe_interval_s
        self.runs: List[RecordingTracer] = []
        self.probes = ProbeRegistry()
        self.flight = FlightRecorder()

    def new_run(self, label: str) -> RecordingTracer:
        """A fresh tracer for one simulation run (one Perfetto process)."""
        tracer = RecordingTracer(
            label, self.max_events_per_run, index=len(self.runs)
        )
        self.runs.append(tracer)
        return tracer

    def total_events(self) -> int:
        return sum(len(run.events) for run in self.runs)

    def total_dropped(self) -> int:
        return sum(run.dropped for run in self.runs)


class _NullSession:
    """Disabled session: ``new_run`` hands back the shared null tracer."""

    enabled = False
    capture_packets = 0
    probe_interval_s = None

    def new_run(self, label: str) -> NullTracer:
        return NULL_TRACER


NULL_SESSION = _NullSession()

_current: Any = NULL_SESSION


def current_session() -> Any:
    """The ambient session (the disabled :data:`NULL_SESSION` by default)."""
    return _current


@contextmanager
def use_session(session: TraceSession) -> Iterator[TraceSession]:
    """Make ``session`` ambient for the duration of the block.

    Systems constructed inside the block trace into it; systems
    constructed outside (including in worker processes — tracing is
    in-process only) keep the null tracer.
    """
    global _current
    previous = _current
    _current = session
    try:
        yield session
    finally:
        _current = previous
