"""The fleet telemetry plane for sharded fabric runs.

PR 7 moved the flagship workloads into ``ShardedRunner`` fabric runs —
and put every per-worker probe behind a process boundary.  This module
is the parent-side plane that turns the epoch-barrier protocol into a
telemetry bus:

* **shard side** — :class:`ProbeDeltaTap` wraps a rack shard's local
  :class:`~repro.obs.probes.ProbeRegistry` and emits *deltas* (changed
  counters + current gauges, sorted names) that ride the existing
  ``Pipe`` reply of every ``step``;
* **parent side** — :class:`FleetTelemetry` aggregates the per-rack
  summaries and probe deltas at each 20 ms epoch barrier into
  fleet-wide time-series (watts, shed traffic, awake/draining servers,
  hot set, throttle, occupancy, p99) under bounded-memory
  :class:`DownsampledSeries`, streams an epoch-stamped JSONL
  :class:`~repro.obs.journal.RunJournal`, evaluates declarative
  :mod:`~repro.obs.slo` monitors, drives a :class:`LiveTicker` and a
  Prometheus text-format snapshot, and exports a multi-process
  Perfetto trace (one process per rack, the fleet control plane as its
  own process).

The hard invariant is inherited from :mod:`repro.obs`: with no
``FleetTelemetry`` attached, fabric payloads are byte-identical at
every ``--shard-jobs`` — telemetry only ever *reads* simulation state,
so even traced payloads hash identically to untraced ones (the
``benchmarks/check_obs_overhead.py`` gate asserts both).
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from repro.obs.flight import FlightRecorder
from repro.obs.journal import SCHEMA, RunJournal
from repro.obs.probes import ProbeRegistry
from repro.obs.slo import SloMonitor, SloRule
from repro.obs.tracer import TraceSession


# -- bounded series --------------------------------------------------------


class DownsampledSeries:
    """A time-series that never stores more than ``max_points`` samples.

    When full, the stored points are decimated 2:1 and the sampling
    stride doubles — coverage stays uniform over the whole run, memory
    stays in ``[max_points/2, max_points]``, and the decision is purely
    count-driven, so the retained points are deterministic.  Running
    aggregates (count/total/min/max/last) always cover **every** sample.
    """

    def __init__(self, name: str, max_points: int = 2048) -> None:
        if max_points < 4:
            raise ValueError("max_points must be >= 4")
        self.name = name
        self.max_points = max_points
        self.times: List[float] = []
        self.values: List[float] = []
        self.stride = 1
        self.count = 0
        self.total = 0.0
        self.minimum = 0.0
        self.maximum = 0.0
        self.last = 0.0

    def append(self, t: float, value: float) -> None:
        index = self.count
        self.count += 1
        self.total += value
        self.last = value
        if index == 0:
            self.minimum = self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        if index % self.stride:
            return
        if len(self.times) >= self.max_points:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self.stride *= 2
            if index % self.stride:
                return
        self.times.append(t)
        self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __len__(self) -> int:
        return len(self.values)


# -- shard side ------------------------------------------------------------


class ProbeDeltaTap:
    """Ship a registry's state as per-epoch deltas, not full dumps.

    Counters travel as increments since the previous collect (omitted
    when unchanged); gauges travel by value.  Names are sorted, so the
    shipped payload is deterministic and diffable.
    """

    def __init__(self, registry: ProbeRegistry) -> None:
        self.registry = registry
        self._last_counters: Dict[str, float] = {}

    def collect(self) -> Dict[str, Dict[str, float]]:
        counters: Dict[str, float] = {}
        for name, counter in self.registry.counters():
            previous = self._last_counters.get(name, 0.0)
            if counter.value != previous:
                counters[name] = counter.value - previous
                self._last_counters[name] = counter.value
        gauges = {name: gauge.value for name, gauge in self.registry.gauges()}
        return {"counters": counters, "gauges": gauges}


# -- live progress ---------------------------------------------------------


class LiveTicker:
    """In-terminal epoch ticker: one status line, updated in place.

    Refresh cadence is *epoch-count* driven (no wall-clock reads), so a
    ticking run stays deterministic.  On a TTY the line rewrites itself
    with ``\\r``; on a plain stream it degrades to one line per ~10 % of
    the run, so CI logs stay readable.
    """

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        refresh_epochs: Optional[int] = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.refresh_epochs = refresh_epochs
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._dirty = False

    def _cadence(self, total_epochs: int) -> int:
        if self.refresh_epochs is not None:
            return max(1, self.refresh_epochs)
        share = 100 if self._is_tty else 10
        return max(1, total_epochs // share)

    def update(
        self, label: str, epoch: int, total_epochs: int, record: Dict[str, Any]
    ) -> None:
        if (epoch + 1) % self._cadence(total_epochs) and epoch + 1 != total_epochs:
            return
        percent = 100.0 * (epoch + 1) / max(1, total_epochs)
        line = (
            f"{label}: epoch {epoch + 1}/{total_epochs} ({percent:3.0f}%)  "
            f"offered {record['offered_gbps']:7.1f} Gbps  "
            f"shed {record['shed_gbps']:6.2f}  "
            f"power {record['power_w']:7.1f} W  "
            f"awake {record['awake']:5.1f}  "
            f"hot {record['hot_racks']:d}  "
            f"p99 {record['p99_us']:7.1f} us"
        )
        if self._is_tty:
            self.stream.write("\r" + line)
            self._dirty = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        if self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False


# -- Prometheus snapshot ---------------------------------------------------

_PROM_PREFIX = "hal_fabric"

#: fleet-record keys exported as gauges (name, help)
_PROM_GAUGES: Tuple[Tuple[str, str], ...] = (
    ("epoch", "last completed epoch barrier"),
    ("t_s", "simulated seconds at the barrier"),
    ("offered_gbps", "fleet offered rate"),
    ("admitted_gbps", "fleet admitted rate after power-cap throttle"),
    ("shed_gbps", "traffic shed by the admission throttle"),
    ("power_w", "fleet power draw"),
    ("awake", "awake (non-asleep) servers fleet-wide"),
    ("draining", "draining servers fleet-wide"),
    ("hot_racks", "racks in the packing hot set"),
    ("parked_racks", "racks receiving zero dispatch this epoch"),
    ("throttle", "admission throttle factor"),
    ("backlog_packets", "queued packets fleet-wide"),
    ("rxq_occupancy", "max Rx-queue occupancy across racks"),
    ("p99_us", "per-epoch p99 latency, worst rack"),
    ("rack_flaps", "cumulative hot-set size changes"),
)


def prometheus_text(runs: Sequence[Tuple[str, Dict[str, Any]]]) -> str:
    """Prometheus text-format snapshot of the latest epoch record of
    each run (label becomes the ``run`` label)."""
    lines: List[str] = []
    for key, help_text in _PROM_GAUGES:
        metric = f"{_PROM_PREFIX}_{key}"
        samples = [
            (label, record[key])
            for label, record in runs
            if record is not None and key in record
        ]
        if not samples:
            continue
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} gauge")
        for label, value in samples:
            lines.append(f'{metric}{{run="{label}"}} {float(value):g}')
    for label, record in runs:
        if record is None:
            continue
        for key, per_rack in (
            ("rack_power_w", f"{_PROM_PREFIX}_rack_power_w"),
            ("rack_dispatched_gbps", f"{_PROM_PREFIX}_rack_dispatched_gbps"),
            ("rack_awake", f"{_PROM_PREFIX}_rack_awake"),
        ):
            values = record.get(key)
            if not values:
                continue
            lines.append(f"# TYPE {per_rack} gauge")
            for rack, value in enumerate(values):
                lines.append(
                    f'{per_rack}{{run="{label}",rack="{rack}"}} {float(value):g}'
                )
    return "\n".join(lines) + "\n"


def write_prometheus_snapshot(
    path: str, runs: Sequence[Tuple[str, Dict[str, Any]]]
) -> None:
    """Atomic snapshot write (tmp + rename) so a scraper never reads a
    half-written exposition."""
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(prometheus_text(runs))
    os.replace(tmp, path)


# -- per-run aggregation ---------------------------------------------------

#: fleet series kept per run (record key -> series)
_FLEET_SERIES = (
    "offered_gbps",
    "admitted_gbps",
    "shed_gbps",
    "power_w",
    "awake",
    "draining",
    "hot_racks",
    "parked_racks",
    "throttle",
    "backlog_packets",
    "rxq_occupancy",
    "dropped_packets",
    "p99_us",
)

#: per-rack series kept per run
_RACK_SERIES = ("power_w", "dispatched_gbps", "awake")


class FleetRun:
    """One fabric run's aggregated state inside the telemetry plane."""

    def __init__(
        self,
        label: str,
        racks: int,
        epochs: int,
        epoch_s: float,
        rules: Sequence[SloRule],
        max_points: int,
    ) -> None:
        self.label = label
        self.racks = racks
        self.epochs = epochs
        self.epoch_s = epoch_s
        self.max_points = max_points
        self.fleet_series: Dict[str, DownsampledSeries] = {
            name: DownsampledSeries(f"fleet/{name}", max_points)
            for name in _FLEET_SERIES
        }
        self.rack_series: Dict[Tuple[int, str], DownsampledSeries] = {
            (rack, name): DownsampledSeries(f"rack{rack}/{name}", max_points)
            for rack in range(racks)
            for name in _RACK_SERIES
        }
        self.monitors = [SloMonitor(rule) for rule in rules]
        self.violation_events: List[Tuple[int, float, str, float]] = []
        self.flap_events: List[Tuple[int, float, int]] = []
        self.rack_flaps = 0
        self.last_hot_racks: Optional[int] = None
        self.last_record: Optional[Dict[str, Any]] = None
        self.verdicts: List[Dict[str, Any]] = []
        self.finished = False

    # -- record construction -------------------------------------------

    def build_record(
        self,
        epoch: int,
        t_s: float,
        offered_gbps: float,
        shares: Sequence[float],
        summaries: Sequence[Dict[str, Any]],
        hot_racks: int,
        throttle: float,
    ) -> Dict[str, Any]:
        admitted_gbps = float(sum(shares))
        power_w = sum(float(s["power_w"]) for s in summaries)
        awake = sum(float(s["awake"]) for s in summaries)
        backlog = sum(float(s["backlog_packets"]) for s in summaries)
        dropped = sum(float(s["dropped_packets"]) for s in summaries)
        rxq = max((int(s["rxq_occupancy"]) for s in summaries), default=0)
        draining = 0.0
        p99_us = 0.0
        for summary in summaries:
            gauges = summary.get("probes", {}).get("gauges", {})
            draining += float(gauges.get("rack/draining", 0.0))
            p99_us = max(p99_us, float(gauges.get("rack/p99_us", 0.0)))
        flap = 0
        if self.last_hot_racks is not None and hot_racks != self.last_hot_racks:
            flap = 1
            self.rack_flaps += 1
            if len(self.flap_events) < 1000:
                self.flap_events.append((epoch, t_s, hot_racks))
        self.last_hot_racks = hot_racks
        return {
            "kind": "epoch",
            "epoch": epoch,
            "t_s": t_s,
            "offered_gbps": offered_gbps,
            "admitted_gbps": admitted_gbps,
            "shed_gbps": max(0.0, offered_gbps - admitted_gbps),
            "power_w": power_w,
            "awake": awake,
            "draining": draining,
            "hot_racks": hot_racks,
            "parked_racks": sum(1 for share in shares if share == 0.0),
            "throttle": throttle,
            "backlog_packets": backlog,
            "rxq_occupancy": rxq,
            "dropped_packets": dropped,
            "p99_us": p99_us,
            "rack_flap": flap,
            "rack_flaps": self.rack_flaps,
            "rack_power_w": [float(s["power_w"]) for s in summaries],
            "rack_dispatched_gbps": [
                float(s["dispatched_gbps"]) for s in summaries
            ],
            "rack_awake": [float(s["awake"]) for s in summaries],
        }

    def absorb(
        self,
        record: Dict[str, Any],
        summaries: Sequence[Dict[str, Any]],
    ) -> List[Dict[str, Any]]:
        """Fold one epoch record into series + monitors; returns the SLO
        violation records (possibly empty) for journaling."""
        t_s = record["t_s"]
        for name in _FLEET_SERIES:
            self.fleet_series[name].append(t_s, float(record[name]))
        for rack, summary in enumerate(summaries):
            self.rack_series[(rack, "power_w")].append(
                t_s, float(summary["power_w"])
            )
            self.rack_series[(rack, "dispatched_gbps")].append(
                t_s, float(summary["dispatched_gbps"])
            )
            self.rack_series[(rack, "awake")].append(
                t_s, float(summary["awake"])
            )
        violations: List[Dict[str, Any]] = []
        for monitor in self.monitors:
            if monitor.observe(record["epoch"], record):
                if len(self.violation_events) < 1000:
                    self.violation_events.append(
                        (
                            record["epoch"],
                            t_s,
                            monitor.rule.name,
                            float(record[monitor.rule.metric]),
                        )
                    )
                violations.append(
                    {
                        "kind": "slo",
                        "epoch": record["epoch"],
                        "t_s": t_s,
                        "rule": monitor.rule.name,
                        "value": float(record[monitor.rule.metric]),
                        "threshold": monitor.rule.threshold,
                    }
                )
        self.last_record = record
        return violations

    def finish(self) -> List[Dict[str, Any]]:
        self.finished = True
        self.verdicts = [monitor.verdict() for monitor in self.monitors]
        return self.verdicts

    @property
    def slo_failed(self) -> bool:
        return any(not v["passed"] for v in self.verdicts)


# -- the plane -------------------------------------------------------------


class FleetTelemetry:
    """Orchestrates every consumer of the per-epoch fleet records.

    One instance may observe several runs back to back (``repro fabric``
    runs each member system through the same plane); each run gets its
    own :class:`FleetRun`, and the journal/flight recorder accumulate
    across runs.
    """

    def __init__(
        self,
        journal_path: Optional[str] = None,
        rules: Sequence[SloRule] = (),
        live: bool = False,
        live_stream: Optional[TextIO] = None,
        prom_path: Optional[str] = None,
        prom_every_epochs: int = 10,
        max_points: int = 2048,
        journal_append: bool = False,
    ) -> None:
        self.rules = list(rules)
        self.journal = (
            RunJournal(journal_path, append=journal_append)
            if journal_path
            else None
        )
        self.ticker = LiveTicker(stream=live_stream) if live else None
        self.prom_path = prom_path
        self.prom_every_epochs = max(1, prom_every_epochs)
        self.max_points = max_points
        self.flight = FlightRecorder()
        self.runs: List[FleetRun] = []
        self._closed = False

    # -- run lifecycle ---------------------------------------------------

    def begin(
        self,
        label: str,
        racks: int,
        epochs: int,
        epoch_s: float,
        meta: Optional[Dict[str, Any]] = None,
    ) -> FleetRun:
        run = FleetRun(
            label, racks, epochs, epoch_s, self.rules, self.max_points
        )
        self.runs.append(run)
        if self.journal is not None:
            record: Dict[str, Any] = {
                "kind": "meta",
                "schema": SCHEMA,
                "label": label,
                "racks": racks,
                "epochs": epochs,
                "epoch_s": epoch_s,
            }
            if meta:
                record.update(meta)
            self.journal.write(record)
        return run

    def on_epoch(
        self,
        epoch: int,
        t_s: float,
        offered_gbps: float,
        shares: Sequence[float],
        summaries: Sequence[Dict[str, Any]],
        hot_racks: int,
        throttle: float,
    ) -> None:
        run = self._current_run()
        record = run.build_record(
            epoch, t_s, offered_gbps, shares, summaries, hot_racks, throttle
        )
        violations = run.absorb(record, summaries)
        if self.journal is not None:
            self.journal.write(record)
            for violation in violations:
                self.journal.write(violation)
        if self.ticker is not None:
            self.ticker.update(run.label, epoch, run.epochs, record)
        if self.prom_path is not None and (
            (epoch + 1) % self.prom_every_epochs == 0
            or epoch + 1 == run.epochs
        ):
            self.write_prometheus(self.prom_path)

    def interrupt(
        self, epoch: int, signame: str = "", resumable: bool = False
    ) -> None:
        """Journal a drain-at-barrier interruption as the run's final
        record (kind ``interrupt``): the epoch count the run completed,
        which signal asked for the drain, and whether a checkpoint makes
        it resumable.  The journal reader renders it in place of the
        ``finish`` record an uninterrupted run would have written."""
        run = self._current_run()
        if self.ticker is not None:
            self.ticker.close()
        if self.journal is not None:
            self.journal.write(
                {
                    "kind": "interrupt",
                    "label": run.label,
                    "epoch": epoch,
                    "signal": signame,
                    "resumable": bool(resumable),
                }
            )

    def end_run(self, fleet_summary: Dict[str, Any]) -> None:
        run = self._current_run()
        verdicts = run.finish()
        if self.ticker is not None:
            self.ticker.close()
        if self.journal is not None:
            self.journal.write(
                {
                    "kind": "finish",
                    "label": run.label,
                    "fleet": dict(fleet_summary),
                    "slo": verdicts,
                }
            )
        self.flight.record_run(run.label, **fleet_summary, slo=verdicts)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self.prom_path is not None and self.runs:
            self.write_prometheus(self.prom_path)
        if self.journal is not None:
            self.journal.close()
        if self.ticker is not None:
            self.ticker.close()

    def __enter__(self) -> "FleetTelemetry":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _current_run(self) -> FleetRun:
        if not self.runs:
            raise RuntimeError("FleetTelemetry.begin() was never called")
        return self.runs[-1]

    # -- verdict surface -------------------------------------------------

    @property
    def slo_failed(self) -> bool:
        return any(run.slo_failed for run in self.runs)

    def verdicts(self) -> List[Dict[str, Any]]:
        out: List[Dict[str, Any]] = []
        for run in self.runs:
            for verdict in run.verdicts:
                out.append(dict(verdict, run=run.label))
        return out

    # -- exporters -------------------------------------------------------

    def write_prometheus(self, path: str) -> None:
        write_prometheus_snapshot(
            path,
            [
                (run.label, run.last_record)
                for run in self.runs
                if run.last_record is not None
            ],
        )

    def to_trace_session(self) -> TraceSession:
        """Multi-process Perfetto view: one trace process per rack, the
        fleet control plane as its own process, counters fed from the
        (bounded) downsampled series, instants for SLO violations and
        hot-set changes."""
        session = TraceSession()
        for run in self.runs:
            fleet = session.new_run(f"{run.label}/fleet")
            for name in _FLEET_SERIES:
                series = run.fleet_series[name]
                for t, value in zip(series.times, series.values):
                    fleet.counter(name, name, t, value)
            for epoch, t_s, hot in run.flap_events:
                fleet.instant(
                    "decisions",
                    "hot_set_change",
                    t_s,
                    {"epoch": epoch, "hot_racks": hot},
                )
            for epoch, t_s, rule, value in run.violation_events:
                fleet.instant(
                    "slo",
                    "violation",
                    t_s,
                    {"epoch": epoch, "rule": rule, "value": value},
                )
            for rack in range(run.racks):
                tracer = session.new_run(f"{run.label}/rack{rack}")
                for name in _RACK_SERIES:
                    series = run.rack_series[(rack, name)]
                    for t, value in zip(series.times, series.values):
                        tracer.counter(name, name, t, value)
        session.flight = self.flight
        return session
