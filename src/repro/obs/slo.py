"""Declarative SLO monitors over the aggregated fleet series.

A rule is a comparison over one metric of the per-epoch fleet record
(``"power_w<=900"``, ``"shed_gbps<=0.5"``, ``"p99_us<=2000"``,
``"rack_flaps<=4"``).  Monitors evaluate streaming — one
:meth:`SloMonitor.observe` call per epoch barrier — so a violation is
caught (and journaled) the epoch it happens, not after a multi-hour run
completes.  Verdicts land in the flight recorder, and the CLI's
``--slo-strict`` turns any failed rule into a non-zero exit code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

#: comparison operators, longest first so the parser matches ``<=`` before ``<``
_OPS = ("<=", ">=", "<", ">")

_RULE_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_/]*)\s*(<=|>=|<|>)\s*([-+0-9.eE]+)\s*$"
)


@dataclass(frozen=True)
class SloRule:
    """One declarative bound on a fleet-record metric."""

    metric: str
    op: str
    threshold: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO operator {self.op!r}; known: {_OPS}")

    @property
    def name(self) -> str:
        return f"{self.metric}{self.op}{self.threshold:g}"

    def holds(self, value: float) -> bool:
        if self.op == "<=":
            return value <= self.threshold
        if self.op == ">=":
            return value >= self.threshold
        if self.op == "<":
            return value < self.threshold
        return value > self.threshold


def parse_slo_rule(text: str) -> SloRule:
    """Parse ``"metric<=value"`` (also ``>=``, ``<``, ``>``)."""
    match = _RULE_RE.match(text)
    if not match:
        raise ValueError(
            f"cannot parse SLO rule {text!r}; expected metric<=value, "
            "e.g. 'power_w<=900' or 'shed_gbps<=0.5'"
        )
    metric, op, threshold = match.groups()
    return SloRule(metric=metric, op=op, threshold=float(threshold))


class SloMonitor:
    """Streaming evaluator for one rule: per-epoch observe, final verdict."""

    def __init__(self, rule: SloRule) -> None:
        self.rule = rule
        self.epochs = 0
        self.violations = 0
        self.worst: Optional[float] = None
        self.first_violation_epoch: Optional[int] = None

    def observe(self, epoch: int, record: Dict[str, Any]) -> bool:
        """Fold one epoch's fleet record; returns True when this epoch
        violates the rule.  Unknown metrics fail loudly — a typo'd rule
        that silently always passes is worse than no rule."""
        rule = self.rule
        if rule.metric not in record:
            known = ", ".join(sorted(k for k, v in record.items()
                                     if isinstance(v, (int, float))))
            raise KeyError(
                f"SLO rule {rule.name!r}: metric {rule.metric!r} is not in "
                f"the fleet epoch record; known metrics: {known}"
            )
        value = float(record[rule.metric])
        self.epochs += 1
        # "worst" is the value farthest in the violating direction
        if self.worst is None:
            self.worst = value
        elif rule.op in ("<=", "<"):
            self.worst = max(self.worst, value)
        else:
            self.worst = min(self.worst, value)
        if rule.holds(value):
            return False
        self.violations += 1
        if self.first_violation_epoch is None:
            self.first_violation_epoch = epoch
        return True

    @property
    def passed(self) -> bool:
        return self.violations == 0

    def verdict(self) -> Dict[str, Any]:
        """The JSON-safe verdict that lands in the flight recorder and
        the journal's finish record."""
        return {
            "rule": self.rule.name,
            "metric": self.rule.metric,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "epochs": self.epochs,
            "violations": self.violations,
            "first_violation_epoch": self.first_violation_epoch,
            "worst": self.worst if self.worst is not None else 0.0,
            "passed": self.passed,
        }


def evaluate_rules(
    rules: List[SloRule], records: List[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Batch evaluation (the ``repro journal`` re-check path): run every
    rule over a list of already-journaled epoch records."""
    monitors = [SloMonitor(rule) for rule in rules]
    for epoch, record in enumerate(records):
        for monitor in monitors:
            monitor.observe(record.get("epoch", epoch), record)
    return [monitor.verdict() for monitor in monitors]
