"""Discrete-event simulation kernel.

The whole reproduction runs on this small engine: a monotonic simulation
clock, a binary-heap event queue, and a handful of conveniences for the
periodic processes (traffic-monitor windows, LBP epochs, power sampling)
that the HAL system is built from.

Time is expressed in **seconds** as floats; sub-microsecond resolution is
ample for the microsecond-scale latencies the paper measures.

Event representation
--------------------
Events are plain lists ``[time, priority, seq, callback, args, status]``
rather than objects: heap comparisons stop at the unique ``seq`` (so the
callback is never compared), pushes allocate one small list, and the
``run()`` loop indexes slots directly instead of chasing attributes.
``status`` is one of the ``_PENDING``/``_CANCELLED``/``_POPPED``
module constants; cancellation flips it in place, and the heap compacts
cancelled entries lazily once they outnumber the live ones.
"""

from __future__ import annotations

import itertools
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Dict, Iterable, List, Optional, cast

# event slot indices
_TIME = 0
_PRIORITY = 1
_SEQ = 2
_CALLBACK = 3
_ARGS = 4
_STATUS = 5

# event status values
_PENDING = 0
_CANCELLED = 1
_POPPED = 2


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: List[Any], sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return cast(float, self._event[_TIME])

    @property
    def seq(self) -> int:
        """Insertion sequence number (the heap's final tie-break).

        Checkpoint code records it to re-arm coexisting pending events in
        their original relative order; the absolute value is meaningless.
        """
        return cast(int, self._event[_SEQ])

    @property
    def pending(self) -> bool:
        return bool(self._event[_STATUS] == _PENDING)

    @property
    def cancelled(self) -> bool:
        return bool(self._event[_STATUS] == _CANCELLED)

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        event = self._event
        if event[_STATUS] != _PENDING:
            return
        event[_STATUS] = _CANCELLED
        event[_CALLBACK] = event[_ARGS] = None  # release references early
        self._sim._note_cancelled(1)


class BatchHandle:
    """Handle to a batch of events scheduled with :meth:`Simulator.schedule_batch`.

    Cancelling the batch cancels every member that has not fired yet (one
    counter update + at most one heap compaction, however many remain).
    """

    __slots__ = ("_events", "_sim")

    def __init__(self, events: List[List[Any]], sim: "Simulator") -> None:
        self._events = events
        self._sim = sim

    def __len__(self) -> int:
        return len(self._events)

    def pending(self) -> int:
        """Members that have neither fired nor been cancelled."""
        return sum(1 for event in self._events if event[_STATUS] == _PENDING)

    def cancel(self) -> None:
        """Cancel every not-yet-fired member of the batch."""
        cancelled = 0
        for event in self._events:
            if event[_STATUS] == _PENDING:
                event[_STATUS] = _CANCELLED
                event[_CALLBACK] = event[_ARGS] = None
                cancelled += 1
        if cancelled:
            self._sim._note_cancelled(cancelled)


class RecurrenceHandle:
    """Stop/inspect handle for a recurrence built by :meth:`Simulator.every`.

    Calling the handle stops the recurrence (the historical contract:
    ``every()`` used to return a bare stop closure, and every call site
    just invokes it).  On top of that it exposes the *currently pending*
    firing — next time and insertion seq — which is what lets checkpoint
    code snapshot a recurrence and re-arm it phase-exactly at restore
    (``sim.every(period, cb, start=next_time, priority=priority)``).
    """

    __slots__ = ("period", "priority", "stopped", "_event")

    def __init__(self, period: float, priority: int) -> None:
        self.period = period
        self.priority = priority
        self.stopped = False
        self._event: Optional[List[Any]] = None

    def __call__(self) -> None:
        self.stop()

    def stop(self) -> None:
        self.stopped = True

    @property
    def next_time(self) -> Optional[float]:
        """Absolute time of the next firing; None once stopped/expired."""
        event = self._event
        if self.stopped or event is None or event[_STATUS] != _PENDING:
            return None
        return cast(float, event[_TIME])

    @property
    def next_seq(self) -> Optional[int]:
        """Insertion seq of the next firing; None once stopped/expired."""
        event = self._event
        if self.stopped or event is None or event[_STATUS] != _PENDING:
            return None
        return cast(int, event[_SEQ])


class Simulator:
    """A discrete-event simulator with a priority-ordered event heap.

    Events scheduled for the same instant fire in (priority, insertion)
    order, so components can guarantee e.g. that a rate-window rollover is
    observed before the packets of the next window arrive.
    """

    #: priority for ordinary events
    PRIORITY_NORMAL = 10
    #: priority for control-plane events that must precede data events
    PRIORITY_CONTROL = 0
    #: priority for bookkeeping that must follow data events
    PRIORITY_LATE = 20

    #: cancelled events are compacted out of the heap once they outnumber
    #: the live ones (and the heap is big enough for a rebuild to pay off)
    _COMPACT_MIN_CANCELLED = 16

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_heap = 0
        # observability hook (repro.obs): None in untraced runs, so the
        # run() loop is untouched and only rare kernel-internal moments
        # (heap compaction) pay an is-not-None branch; typed Any rather
        # than the obs Tracer protocol to keep the kernel import-free
        self.tracer: Optional[Any] = None

    def set_tracer(self, tracer: Any) -> None:
        """Attach an ``repro.obs`` tracer (kernel-internal events only;
        periodic dispatch counters come from the system's probe pump)."""
        self.tracer = tracer

    def _note_cancelled(self, count: int) -> None:
        self._cancelled_in_heap += count
        if (
            self._cancelled_in_heap > self._COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            before = len(self._heap)
            self._heap = [e for e in self._heap if e[_STATUS] == _PENDING]
            _heapify(self._heap)
            self._cancelled_in_heap = 0
            if self.tracer is not None:
                self.tracer.instant(
                    "kernel",
                    "heap_compaction",
                    self._now,
                    {"before": before, "after": len(self._heap)},
                )

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        event = [when, priority, next(self._seq), callback, args, _PENDING]
        _heappush(self._heap, event)
        return EventHandle(event, self)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = [when, priority, next(self._seq), callback, args, _PENDING]
        _heappush(self._heap, event)
        return EventHandle(event, self)

    def schedule_batch(
        self,
        times: Iterable[float],
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> BatchHandle:
        """Schedule ``callback(*args)`` at each absolute time in ``times``.

        ``times`` must be ascending and not in the past. This is the bulk
        counterpart of :meth:`schedule_at` for pre-computed arrival trains:
        large batches are appended and re-heapified in one O(n + m) pass
        instead of m individual O(log n) sifts. Event identity (seq order,
        priority semantics) is exactly as if :meth:`schedule_at` had been
        called once per time, so pop order is unchanged.
        """
        heap = self._heap
        seq = self._seq
        prev = self._now
        events: List[List[Any]] = []
        for when in times:
            if when < prev:
                raise SimulationError(
                    f"schedule_batch times must be ascending and not in the "
                    f"past (got {when} after {prev})"
                )
            prev = when
            events.append([when, priority, next(seq), callback, args, _PENDING])
        if events:
            # a heapify rebuild costs O(n + m); m pushes cost O(m log n).
            # Rebuild when the batch is big relative to the live heap.
            if len(events) * 4 >= len(heap):
                heap.extend(events)
                _heapify(heap)
            else:
                for event in events:
                    _heappush(heap, event)
        return BatchHandle(events, self)

    def every(
        self,
        period: float,
        callback: Callable[..., None],
        *args: Any,
        start: Optional[float] = None,
        priority: int = PRIORITY_CONTROL,
    ) -> RecurrenceHandle:
        """Run ``callback(*args)`` every ``period`` seconds.

        Returns a :class:`RecurrenceHandle`; calling it stops the
        recurrence. The first firing is at ``start`` (absolute) if given,
        else one period from now.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        handle = RecurrenceHandle(period, priority)

        def fire() -> None:
            if handle.stopped:
                return
            callback(*args)
            if not handle.stopped:
                handle._event = self.schedule(period, fire, priority=priority)._event

        first = start if start is not None else self._now + period
        handle._event = self.schedule_at(first, fire, priority=priority)._event
        return handle

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have been executed. Returns the final clock value.

        The clock only fast-forwards to ``until`` when the event heap was
        genuinely drained past it; stopping early on ``max_events`` leaves
        the clock at the last executed event.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        # localize everything the loop touches: the heap list, heappop, and
        # the budget counter live in locals; only _now (which callbacks read
        # through .now) is written back per event
        heap = self._heap
        pop = _heappop
        executed = 0
        budget = float("inf") if max_events is None else max_events
        hit_budget = False
        try:
            while heap:
                if executed >= budget:
                    hit_budget = True
                    break
                event = heap[0]
                when = event[_TIME]
                if until is not None and when > until:
                    break
                pop(heap)
                status = event[_STATUS]
                event[_STATUS] = _POPPED
                if status == _CANCELLED:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = when
                event[_CALLBACK](*event[_ARGS])
                executed += 1
                self._events_processed += 1
                if heap is not self._heap:
                    # a cancel-triggered compaction replaced the heap list
                    heap = self._heap
            if until is not None and not hit_budget and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event. Returns False if none remain."""
        while self._heap:
            event = _heappop(self._heap)
            status = event[_STATUS]
            event[_STATUS] = _POPPED
            if status == _CANCELLED:
                self._cancelled_in_heap -= 1
                continue
            self._now = event[_TIME]
            event[_CALLBACK](*event[_ARGS])
            self._events_processed += 1
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][_STATUS] == _CANCELLED:
            _heappop(heap)[_STATUS] = _POPPED
            self._cancelled_in_heap -= 1
        return cast(float, heap[0][_TIME]) if heap else None

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return len(self._heap) - self._cancelled_in_heap

    # -- checkpoint/restore primitives ----------------------------------
    #
    # The heap itself is deliberately *not* serialized: pending events
    # hold closures (recurrence ``fire`` wrappers, wake completions), so
    # a checkpoint records component state + timer phases instead and a
    # restore rebuilds the components and re-arms their timers.  Only the
    # relative seq order of coexisting pending events affects pop order,
    # so re-arming in ascending original-seq order on a fresh counter
    # reproduces the identical event sequence (see repro.serve.state).

    def clock_state(self) -> Dict[str, Any]:
        """The restorable clock portion of the engine's state."""
        return {"now": self._now, "events_processed": self._events_processed}

    def clear_events(self) -> int:
        """Drop every scheduled event; returns how many were live.

        Checkpoint-restore preamble: a freshly built component tree has
        construction-time timers in the heap that the restore re-arms
        with snapshot phases instead.
        """
        if self._running:
            raise SimulationError("cannot clear events while running")
        live = self.pending()
        self._heap = []
        self._cancelled_in_heap = 0
        return live

    def restore_clock(self, now: float, events_processed: int = 0) -> None:
        """Reset the clock to a snapshot taken by :meth:`clock_state`.

        Requires an empty heap (``clear_events`` first): rewinding or
        advancing the clock under pending events would fire them at the
        wrong instants.
        """
        if self._running:
            raise SimulationError("cannot restore the clock while running")
        if self._heap:
            raise SimulationError(
                "restore_clock requires an empty heap (call clear_events first)"
            )
        self._now = now
        self._events_processed = events_processed
