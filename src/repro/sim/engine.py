"""Discrete-event simulation kernel.

The whole reproduction runs on this small engine: a monotonic simulation
clock, a binary-heap event queue, and a handful of conveniences for the
periodic processes (traffic-monitor windows, LBP epochs, power sampling)
that the HAL system is built from.

Time is expressed in **seconds** as floats; sub-microsecond resolution is
ample for the microsecond-scale latencies the paper measures.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    popped: bool = field(compare=False, default=False)


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        event = self._event
        if event.cancelled or event.popped:
            return
        event.cancelled = True
        self._sim._note_cancelled()


class Simulator:
    """A discrete-event simulator with a priority-ordered event heap.

    Events scheduled for the same instant fire in (priority, insertion)
    order, so components can guarantee e.g. that a rate-window rollover is
    observed before the packets of the next window arrive.
    """

    #: priority for ordinary events
    PRIORITY_NORMAL = 10
    #: priority for control-plane events that must precede data events
    PRIORITY_CONTROL = 0
    #: priority for bookkeeping that must follow data events
    PRIORITY_LATE = 20

    #: cancelled events are compacted out of the heap once they outnumber
    #: the live ones (and the heap is big enough for a rebuild to pay off)
    _COMPACT_MIN_CANCELLED = 16

    def __init__(self) -> None:
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_heap = 0

    def _note_cancelled(self) -> None:
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap > self._COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._cancelled_in_heap = 0

    def _pop_event(self) -> _Event:
        event = heapq.heappop(self._heap)
        event.popped = True
        if event.cancelled:
            self._cancelled_in_heap -= 1
        return event

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = _Event(when, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return EventHandle(event, self)

    def every(
        self,
        period: float,
        callback: Callable[..., None],
        *args: Any,
        start: Optional[float] = None,
        priority: int = PRIORITY_CONTROL,
    ) -> Callable[[], None]:
        """Run ``callback(*args)`` every ``period`` seconds.

        Returns a function that stops the recurrence when called. The first
        firing is at ``start`` (absolute) if given, else one period from now.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        stopped = {"flag": False}

        def fire() -> None:
            if stopped["flag"]:
                return
            callback(*args)
            if not stopped["flag"]:
                self.schedule(period, fire, priority=priority)

        first = start if start is not None else self._now + period
        self.schedule_at(first, fire, priority=priority)

        def stop() -> None:
            stopped["flag"] = True

        return stop

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have been executed. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                self._pop_event()
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(*event.args)
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event. Returns False if none remain."""
        while self._heap:
            event = self._pop_event()
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            self._pop_event()
        return self._heap[0].time if self._heap else None

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return len(self._heap) - self._cancelled_in_heap
