"""Discrete-event simulation kernel.

The whole reproduction runs on this small engine: a monotonic simulation
clock, a binary-heap event queue, and a handful of conveniences for the
periodic processes (traffic-monitor windows, LBP epochs, power sampling)
that the HAL system is built from.

Time is expressed in **seconds** as floats; sub-microsecond resolution is
ample for the microsecond-scale latencies the paper measures.

Event representation
--------------------
Events are plain lists ``[time, priority, seq, callback, args, status]``
rather than objects: heap comparisons stop at the unique ``seq`` (so the
callback is never compared), pushes allocate one small list, and the
``run()`` loop indexes slots directly instead of chasing attributes.
``status`` is one of the ``_PENDING``/``_CANCELLED``/``_POPPED``
module constants; cancellation flips it in place, and the heap compacts
cancelled entries lazily once they outnumber the live ones.
"""

from __future__ import annotations

import itertools
from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Iterable, List, Optional, cast

# event slot indices
_TIME = 0
_PRIORITY = 1
_SEQ = 2
_CALLBACK = 3
_ARGS = 4
_STATUS = 5

# event status values
_PENDING = 0
_CANCELLED = 1
_POPPED = 2


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class EventHandle:
    """Handle to a scheduled event, allowing cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: List[Any], sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return cast(float, self._event[_TIME])

    @property
    def cancelled(self) -> bool:
        return bool(self._event[_STATUS] == _CANCELLED)

    def cancel(self) -> None:
        """Cancel the event; a no-op if it already fired or was cancelled."""
        event = self._event
        if event[_STATUS] != _PENDING:
            return
        event[_STATUS] = _CANCELLED
        event[_CALLBACK] = event[_ARGS] = None  # release references early
        self._sim._note_cancelled(1)


class BatchHandle:
    """Handle to a batch of events scheduled with :meth:`Simulator.schedule_batch`.

    Cancelling the batch cancels every member that has not fired yet (one
    counter update + at most one heap compaction, however many remain).
    """

    __slots__ = ("_events", "_sim")

    def __init__(self, events: List[List[Any]], sim: "Simulator") -> None:
        self._events = events
        self._sim = sim

    def __len__(self) -> int:
        return len(self._events)

    def pending(self) -> int:
        """Members that have neither fired nor been cancelled."""
        return sum(1 for event in self._events if event[_STATUS] == _PENDING)

    def cancel(self) -> None:
        """Cancel every not-yet-fired member of the batch."""
        cancelled = 0
        for event in self._events:
            if event[_STATUS] == _PENDING:
                event[_STATUS] = _CANCELLED
                event[_CALLBACK] = event[_ARGS] = None
                cancelled += 1
        if cancelled:
            self._sim._note_cancelled(cancelled)


class Simulator:
    """A discrete-event simulator with a priority-ordered event heap.

    Events scheduled for the same instant fire in (priority, insertion)
    order, so components can guarantee e.g. that a rate-window rollover is
    observed before the packets of the next window arrive.
    """

    #: priority for ordinary events
    PRIORITY_NORMAL = 10
    #: priority for control-plane events that must precede data events
    PRIORITY_CONTROL = 0
    #: priority for bookkeeping that must follow data events
    PRIORITY_LATE = 20

    #: cancelled events are compacted out of the heap once they outnumber
    #: the live ones (and the heap is big enough for a rebuild to pay off)
    _COMPACT_MIN_CANCELLED = 16

    def __init__(self) -> None:
        self._heap: List[List[Any]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._cancelled_in_heap = 0
        # observability hook (repro.obs): None in untraced runs, so the
        # run() loop is untouched and only rare kernel-internal moments
        # (heap compaction) pay an is-not-None branch; typed Any rather
        # than the obs Tracer protocol to keep the kernel import-free
        self.tracer: Optional[Any] = None

    def set_tracer(self, tracer: Any) -> None:
        """Attach an ``repro.obs`` tracer (kernel-internal events only;
        periodic dispatch counters come from the system's probe pump)."""
        self.tracer = tracer

    def _note_cancelled(self, count: int) -> None:
        self._cancelled_in_heap += count
        if (
            self._cancelled_in_heap > self._COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 > len(self._heap)
        ):
            before = len(self._heap)
            self._heap = [e for e in self._heap if e[_STATUS] == _PENDING]
            _heapify(self._heap)
            self._cancelled_in_heap = 0
            if self.tracer is not None:
                self.tracer.instant(
                    "kernel",
                    "heap_compaction",
                    self._now,
                    {"before": before, "after": len(self._heap)},
                )

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        when = self._now + delay
        event = [when, priority, next(self._seq), callback, args, _PENDING]
        _heappush(self._heap, event)
        return EventHandle(event, self)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = [when, priority, next(self._seq), callback, args, _PENDING]
        _heappush(self._heap, event)
        return EventHandle(event, self)

    def schedule_batch(
        self,
        times: Iterable[float],
        callback: Callable[..., None],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> BatchHandle:
        """Schedule ``callback(*args)`` at each absolute time in ``times``.

        ``times`` must be ascending and not in the past. This is the bulk
        counterpart of :meth:`schedule_at` for pre-computed arrival trains:
        large batches are appended and re-heapified in one O(n + m) pass
        instead of m individual O(log n) sifts. Event identity (seq order,
        priority semantics) is exactly as if :meth:`schedule_at` had been
        called once per time, so pop order is unchanged.
        """
        heap = self._heap
        seq = self._seq
        prev = self._now
        events: List[List[Any]] = []
        for when in times:
            if when < prev:
                raise SimulationError(
                    f"schedule_batch times must be ascending and not in the "
                    f"past (got {when} after {prev})"
                )
            prev = when
            events.append([when, priority, next(seq), callback, args, _PENDING])
        if events:
            # a heapify rebuild costs O(n + m); m pushes cost O(m log n).
            # Rebuild when the batch is big relative to the live heap.
            if len(events) * 4 >= len(heap):
                heap.extend(events)
                _heapify(heap)
            else:
                for event in events:
                    _heappush(heap, event)
        return BatchHandle(events, self)

    def every(
        self,
        period: float,
        callback: Callable[..., None],
        *args: Any,
        start: Optional[float] = None,
        priority: int = PRIORITY_CONTROL,
    ) -> Callable[[], None]:
        """Run ``callback(*args)`` every ``period`` seconds.

        Returns a function that stops the recurrence when called. The first
        firing is at ``start`` (absolute) if given, else one period from now.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        stopped = {"flag": False}

        def fire() -> None:
            if stopped["flag"]:
                return
            callback(*args)
            if not stopped["flag"]:
                self.schedule(period, fire, priority=priority)

        first = start if start is not None else self._now + period
        self.schedule_at(first, fire, priority=priority)

        def stop() -> None:
            stopped["flag"] = True

        return stop

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the heap is empty, ``until`` is reached, or
        ``max_events`` have been executed. Returns the final clock value.

        The clock only fast-forwards to ``until`` when the event heap was
        genuinely drained past it; stopping early on ``max_events`` leaves
        the clock at the last executed event.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        # localize everything the loop touches: the heap list, heappop, and
        # the budget counter live in locals; only _now (which callbacks read
        # through .now) is written back per event
        heap = self._heap
        pop = _heappop
        executed = 0
        budget = float("inf") if max_events is None else max_events
        hit_budget = False
        try:
            while heap:
                if executed >= budget:
                    hit_budget = True
                    break
                event = heap[0]
                when = event[_TIME]
                if until is not None and when > until:
                    break
                pop(heap)
                status = event[_STATUS]
                event[_STATUS] = _POPPED
                if status == _CANCELLED:
                    self._cancelled_in_heap -= 1
                    continue
                self._now = when
                event[_CALLBACK](*event[_ARGS])
                executed += 1
                self._events_processed += 1
                if heap is not self._heap:
                    # a cancel-triggered compaction replaced the heap list
                    heap = self._heap
            if until is not None and not hit_budget and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute exactly one pending event. Returns False if none remain."""
        while self._heap:
            event = _heappop(self._heap)
            status = event[_STATUS]
            event[_STATUS] = _POPPED
            if status == _CANCELLED:
                self._cancelled_in_heap -= 1
                continue
            self._now = event[_TIME]
            event[_CALLBACK](*event[_ARGS])
            self._events_processed += 1
            return True
        return False

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][_STATUS] == _CANCELLED:
            _heappop(heap)[_STATUS] = _POPPED
            self._cancelled_in_heap -= 1
        return cast(float, heap[0][_TIME]) if heap else None

    def pending(self) -> int:
        """Number of scheduled, not-yet-cancelled events."""
        return len(self._heap) - self._cancelled_in_heap
