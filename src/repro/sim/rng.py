"""Seeded random-number streams.

Every stochastic component (traffic generator, RSS hashing salt, payload
synthesis) draws from its own named stream derived from one experiment
seed, so runs are reproducible and components are statistically
independent of each other.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Dict


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed for ``stream`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seed(root_seed: int, name: str) -> int:
    """Derive the root seed of a *child registry* named ``name``.

    The crc32 salt keeps the spawn namespace disjoint from the flat
    :meth:`RngRegistry.stream` namespace (``spawn("x").stream("y")`` can
    never collide with ``stream("x:y")``), using the same de-randomized
    hashing convention as the rest of the codebase (``hash()`` is
    randomized per interpreter invocation; ``zlib.crc32`` is not).
    """
    salt = zlib.crc32(name.encode()) & 0xFFFFFFFF
    return derive_seed(root_seed, f"spawn:{salt:08x}:{name}")


class RngRegistry:
    """Hands out independent `random.Random` streams by name."""

    def __init__(self, root_seed: int = 2024) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}
        self._children: Dict[str, "RngRegistry"] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) RNG for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams depend only on this registry's
        root seed and ``name``.

        This is what makes rack runs server-count-independent *per
        server*: every server draws from ``registry.spawn(f"s{i}")``, so
        adding server N+1 to a cluster cannot perturb server i's draw
        sequences (a flat shared registry would give no such guarantee
        once components draw in interleaved simulation order).  Children
        are memoised so repeated spawns return the same streams.
        """
        key = f"spawn:{name}"
        child = self._children.get(key)
        if child is None:
            child = RngRegistry(spawn_seed(self.root_seed, name))
            self._children[key] = child
        return child

    def reset(self) -> None:
        """Re-seed all existing streams (and children) to their initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        for child in self._children.values():
            child.reset()
