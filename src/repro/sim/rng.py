"""Seeded random-number streams.

Every stochastic component (traffic generator, RSS hashing salt, payload
synthesis) draws from its own named stream derived from one experiment
seed, so runs are reproducible and components are statistically
independent of each other.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from typing import Any, Dict, List


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed for ``stream`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seed(root_seed: int, name: str) -> int:
    """Derive the root seed of a *child registry* named ``name``.

    The crc32 salt keeps the spawn namespace disjoint from the flat
    :meth:`RngRegistry.stream` namespace (``spawn("x").stream("y")`` can
    never collide with ``stream("x:y")``), using the same de-randomized
    hashing convention as the rest of the codebase (``hash()`` is
    randomized per interpreter invocation; ``zlib.crc32`` is not).
    """
    salt = zlib.crc32(name.encode()) & 0xFFFFFFFF
    return derive_seed(root_seed, f"spawn:{salt:08x}:{name}")


def rng_state(rng: random.Random) -> List[Any]:
    """``rng.getstate()`` as a JSON-safe list (tuples become lists)."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def set_rng_state(rng: random.Random, state: List[Any]) -> None:
    """Restore a stream from :func:`rng_state` output (JSON round-trip
    safe: the inner list is converted back to the tuple ``setstate``
    requires)."""
    version, internal, gauss_next = state
    rng.setstate(
        (int(version), tuple(int(word) for word in internal), gauss_next)
    )


class RngRegistry:
    """Hands out independent `random.Random` streams by name."""

    def __init__(self, root_seed: int = 2024) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}
        self._children: Dict[str, "RngRegistry"] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) RNG for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose streams depend only on this registry's
        root seed and ``name``.

        This is what makes rack runs server-count-independent *per
        server*: every server draws from ``registry.spawn(f"s{i}")``, so
        adding server N+1 to a cluster cannot perturb server i's draw
        sequences (a flat shared registry would give no such guarantee
        once components draw in interleaved simulation order).  Children
        are memoised so repeated spawns return the same streams.
        """
        key = f"spawn:{name}"
        child = self._children.get(key)
        if child is None:
            child = RngRegistry(spawn_seed(self.root_seed, name))
            self._children[key] = child
        return child

    def reset(self) -> None:
        """Re-seed all existing streams (and children) to their initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        for child in self._children.values():
            child.reset()

    # -- checkpoint/restore ---------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Every materialised stream's Mersenne state, recursively over
        spawned children — JSON-safe, suitable for a checkpoint file.

        Streams first requested *after* a restore are not in the dict;
        they derive freshly from the (restored) root seed, exactly as
        they would have in the uninterrupted run.
        """
        return {
            "root_seed": self.root_seed,
            "streams": {
                name: rng_state(stream)
                for name, stream in sorted(self._streams.items())
            },
            "children": {
                key: child.state_dict()
                for key, child in sorted(self._children.items())
            },
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Restore from :meth:`state_dict` output.

        Existing streams are re-wound in place; streams/children only
        present in the snapshot are materialised first (so a restore into
        a freshly built registry works even before any draws).
        """
        if int(state["root_seed"]) != self.root_seed:
            raise ValueError(
                f"snapshot root seed {state['root_seed']} does not match "
                f"registry root seed {self.root_seed}"
            )
        for name, stream_state in state["streams"].items():
            set_rng_state(self.stream(name), stream_state)
        for key, child_state in state["children"].items():
            # keys carry the "spawn:" memo prefix; strip for spawn()
            child = self.spawn(key.split(":", 1)[1])
            child.restore_state(child_state)
