"""Seeded random-number streams.

Every stochastic component (traffic generator, RSS hashing salt, payload
synthesis) draws from its own named stream derived from one experiment
seed, so runs are reproducible and components are statistically
independent of each other.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, stream: str) -> int:
    """Derive a 64-bit child seed for ``stream`` from ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{stream}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Hands out independent `random.Random` streams by name."""

    def __init__(self, root_seed: int = 2024) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoised) RNG for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def reset(self) -> None:
        """Re-seed all existing streams back to their initial state."""
        for name in list(self._streams):
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
