"""Discrete-event simulation substrate for the HAL reproduction."""

from repro.sim.engine import EventHandle, SimulationError, Simulator
from repro.sim.metrics import (
    LatencyReservoir,
    PowerIntegrator,
    RunMetrics,
    ThroughputMeter,
    TimeSeries,
    percentile,
)
from repro.sim.queues import BoundedQueue
from repro.sim.rng import RngRegistry, derive_seed

__all__ = [
    "BoundedQueue",
    "EventHandle",
    "LatencyReservoir",
    "PowerIntegrator",
    "RngRegistry",
    "RunMetrics",
    "SimulationError",
    "Simulator",
    "ThroughputMeter",
    "TimeSeries",
    "derive_seed",
    "percentile",
]
