"""Measurement primitives: latency percentiles, throughput, energy.

The paper reports four headline metrics — maximum/average throughput
(Gbps), p99 latency (µs), average system power (W), and energy efficiency
(throughput / power). These classes collect them during simulation runs
in the same way the testbed instruments do:

* latency is recorded per completed packet and summarised by percentile;
* throughput is delivered bytes over the measurement window;
* power is integrated piecewise over component state changes and sampled
  at a 1 s period like the paper's DCMI/BMC readout.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an ascending-sorted sequence."""
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1] (got {fraction})")
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = fraction * (len(sorted_values) - 1)
    lower = math.floor(pos)
    upper = math.ceil(pos)
    if lower == upper:
        return sorted_values[lower]
    weight = pos - lower
    a, b = sorted_values[lower], sorted_values[upper]
    # a + (b-a)w keeps the result inside [a, b] even under FP rounding
    return min(b, a + (b - a) * weight)


class LatencyReservoir:
    """Reservoir of latency samples with percentile queries.

    Keeps every sample up to ``max_samples``; beyond that it switches to
    uniform reservoir sampling so long runs stay bounded in memory while
    the percentile estimates remain unbiased.
    """

    def __init__(self, max_samples: int = 200_000, seed: int = 12345) -> None:
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self._max_samples = max_samples
        self._seed = seed
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        # private RNG so the reservoir needs no external RNG plumbing
        self._rng = _random.Random(seed)

    def _rand_below(self, n: int) -> int:
        return self._rng.randrange(n)

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency cannot be negative (got {value})")
        self._count += 1
        self._sum += value
        self._sorted = None
        if value > self._max:
            self._max = value
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            slot = self._rand_below(self._count)
            if slot < self._max_samples:
                self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    def quantile(self, fraction: float) -> float:
        if not self._samples:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return percentile(self._sorted, fraction)

    def p50(self) -> float:
        return self.quantile(0.50)

    def p99(self) -> float:
        return self.quantile(0.99)

    def p999(self) -> float:
        return self.quantile(0.999)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (floats round-trip exactly through ``json``)."""
        return {
            "max_samples": self._max_samples,
            "seed": self._seed,
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
            "samples": list(self._samples),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyReservoir":
        """Rebuild a reservoir snapshot.

        Percentile/mean/max queries are exact. The sampling RNG restarts
        from the original seed, so only a reservoir that is *recorded
        into again* after more than ``max_samples`` prior observations
        could diverge from the never-serialized original.
        """
        reservoir = cls(
            max_samples=int(data["max_samples"]), seed=int(data["seed"])
        )
        reservoir._samples = [float(v) for v in data["samples"]]
        reservoir._count = int(data["count"])
        reservoir._sum = float(data["sum"])
        reservoir._max = float(data["max"])
        return reservoir

    def state_dict(self) -> Dict[str, Any]:
        """Mid-run checkpoint form: :meth:`to_dict` plus the sampling RNG
        state, so a restored reservoir that keeps recording past
        ``max_samples`` stays byte-identical to the uninterrupted one
        (the ``from_dict`` caveat does not apply)."""
        from repro.sim.rng import rng_state

        state = self.to_dict()
        state["rng"] = rng_state(self._rng)
        return state

    @classmethod
    def restore_state(cls, state: Dict[str, Any]) -> "LatencyReservoir":
        from repro.sim.rng import set_rng_state

        reservoir = cls.from_dict(state)
        set_rng_state(reservoir._rng, state["rng"])
        return reservoir


class ThroughputMeter:
    """Counts delivered packets/bytes and converts to rates."""

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self._window_start = 0.0

    def record(self, nbytes: int, npackets: int = 1) -> None:
        if nbytes < 0 or npackets < 0:
            raise ValueError("throughput increments must be non-negative")
        self.bytes += nbytes
        self.packets += npackets

    def start_window(self, now: float) -> None:
        self._window_start = now
        self.packets = 0
        self.bytes = 0

    def gbps(self, now: float) -> float:
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.bytes * 8 / elapsed / 1e9

    def mpps(self, now: float) -> float:
        elapsed = now - self._window_start
        if elapsed <= 0:
            return 0.0
        return self.packets / elapsed / 1e6


class PowerIntegrator:
    """Integrates instantaneous power into energy, per component.

    Components report their power level whenever it changes; the
    integrator accumulates ``∫ P dt`` and exposes the time-average, which
    is what the DCMI/BMC sampling in the paper converges to.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._levels: Dict[str, float] = {}
        self._energy: Dict[str, float] = {}
        self._last_update: float = start_time
        self._start_time: float = start_time

    def set_level(self, component: str, watts: float, now: float) -> None:
        if watts < 0:
            raise ValueError(f"power cannot be negative ({component}: {watts})")
        self._advance(now)
        if component not in self._energy:
            self._energy[component] = 0.0
        self._levels[component] = watts

    def _advance(self, now: float) -> None:
        if now < self._last_update:
            raise ValueError("power integrator cannot move backwards in time")
        dt = now - self._last_update
        if dt > 0:
            # every _levels key is seeded in _energy by set_level, so the
            # accumulation is a plain in-place add per component
            energy = self._energy
            for component, watts in self._levels.items():
                energy[component] += watts * dt
        self._last_update = now

    def energy_joules(self, now: float, component: Optional[str] = None) -> float:
        self._advance(now)
        if component is not None:
            return self._energy.get(component, 0.0)
        # lint: disable=DET04 component insertion order is fixed at registration and part of the payload contract (PR 9); reordering would change the float sum and every identity sha
        return sum(self._energy.values())

    def average_watts(self, now: float, component: Optional[str] = None) -> float:
        elapsed = now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self.energy_joules(now, component) / elapsed

    def instantaneous_watts(self) -> float:
        # lint: disable=DET04 same registration-order contract as energy_joules
        return sum(self._levels.values())

    def components(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self._levels) | set(self._energy)))

    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe checkpoint of levels, accumulated energy and clocks.

        Component order is *insertion* order, not sorted: totals are
        float sums over ``dict.values()``, so a restored integrator must
        iterate its components in the original order to reproduce
        bit-identical sums."""
        return {
            "levels": dict(self._levels),
            "energy": dict(self._energy),
            "last_update": self._last_update,
            "start_time": self._start_time,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._levels = {k: float(v) for k, v in state["levels"].items()}
        self._energy = {k: float(v) for k, v in state["energy"].items()}
        self._last_update = float(state["last_update"])
        self._start_time = float(state["start_time"])


@dataclass
class TimeSeries:
    """Sampled (time, value) series, e.g. the Fig. 8 rate snapshots."""

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series must be appended in time order")
        self.times.append(t)
        self.values.append(v)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0


@dataclass
class RunMetrics:
    """Aggregated results of one simulation run (one table cell)."""

    offered_gbps: float = 0.0
    duration_s: float = 0.0
    delivered_bytes: int = 0
    delivered_packets: int = 0
    dropped_packets: int = 0
    generated_packets: int = 0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    average_power_w: float = 0.0
    power_breakdown: Dict[str, float] = field(default_factory=dict)
    snic_share: float = 0.0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_gbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.delivered_bytes * 8 / self.duration_s / 1e9

    @property
    def p99_latency_us(self) -> float:
        return self.latency.p99() * 1e6

    @property
    def mean_latency_us(self) -> float:
        return self.latency.mean * 1e6

    @property
    def drop_rate(self) -> float:
        if self.generated_packets <= 0:
            return 0.0
        return self.dropped_packets / self.generated_packets

    @property
    def energy_efficiency(self) -> float:
        """Throughput per watt (Gbps/W), the paper's efficiency metric."""
        if self.average_power_w <= 0:
            return 0.0
        return self.throughput_gbps / self.average_power_w

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form, the unit the runner's result cache stores."""
        return {
            "offered_gbps": self.offered_gbps,
            "duration_s": self.duration_s,
            "delivered_bytes": self.delivered_bytes,
            "delivered_packets": self.delivered_packets,
            "dropped_packets": self.dropped_packets,
            "generated_packets": self.generated_packets,
            "latency": self.latency.to_dict(),
            "average_power_w": self.average_power_w,
            "power_breakdown": dict(self.power_breakdown),
            "snic_share": self.snic_share,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunMetrics":
        return cls(
            offered_gbps=float(data["offered_gbps"]),
            duration_s=float(data["duration_s"]),
            delivered_bytes=int(data["delivered_bytes"]),
            delivered_packets=int(data["delivered_packets"]),
            dropped_packets=int(data["dropped_packets"]),
            generated_packets=int(data["generated_packets"]),
            latency=LatencyReservoir.from_dict(data["latency"]),
            average_power_w=float(data["average_power_w"]),
            power_breakdown=dict(data["power_breakdown"]),
            snic_share=float(data["snic_share"]),
            extras=dict(data["extras"]),
        )
