"""Bounded FIFO rings used as Rx/Tx queues throughout the models.

DPDK receive rings on both the SNIC and the host are fixed-capacity
descriptor rings: when a ring is full, newly arriving packets are dropped
at the NIC. The paper's load-balancing policy (Algorithm 1) observes ring
occupancy through ``rte_eth_rx_queue_count``; :class:`BoundedQueue`
provides the same observable plus drop accounting.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class BoundedQueue(Generic[T]):
    """A FIFO with fixed capacity and drop/peak statistics."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive (got {capacity})")
        self.capacity = capacity
        self.name = name
        self._items: Deque[T] = deque()
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __repr__(self) -> str:
        return (
            f"BoundedQueue({self.name!r}, {len(self)}/{self.capacity},"
            f" dropped={self.dropped})"
        )

    @property
    def occupancy(self) -> int:
        """Current number of queued items (``rte_eth_rx_queue_count``)."""
        return len(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    def is_empty(self) -> bool:
        return not self._items

    def is_full(self) -> bool:
        return len(self._items) >= self.capacity

    def push(self, item: T) -> bool:
        """Enqueue; returns False (and counts a drop) if the ring is full."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        self.enqueued += 1
        if len(self._items) > self.peak_occupancy:
            self.peak_occupancy = len(self._items)
        return True

    def push_many(self, items: List[T]) -> int:
        """Enqueue a burst; returns how many were accepted."""
        accepted = 0
        for item in items:
            if self.push(item):
                accepted += 1
        return accepted

    def pop(self) -> Optional[T]:
        """Dequeue the head item, or None if empty."""
        if not self._items:
            return None
        self.dequeued += 1
        return self._items.popleft()

    def pop_burst(self, max_items: int) -> List[T]:
        """Dequeue up to ``max_items`` items (``rte_eth_rx_burst``)."""
        burst: List[T] = []
        while self._items and len(burst) < max_items:
            burst.append(self._items.popleft())
        self.dequeued += len(burst)
        return burst

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def clear(self) -> None:
        self._items.clear()

    def reset_stats(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.peak_occupancy = len(self._items)
