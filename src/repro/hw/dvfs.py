"""SNIC-processor DVFS model (§VIII discussion).

The paper asks whether dynamic voltage/frequency scaling on the SNIC
processor would change HAL's story and concludes it would not: the SNIC
contributes only 0.5–2% of system power, so even a perfect governor
"will reduce the system-wide power consumption by only 2% at most", and
LBP keeps working because V/F-dependent capacity shows up in the same
Rx-queue occupancy signal it already monitors.

This module models a frequency ladder with cubic dynamic-power scaling
(P ∝ fV² with V ∝ f), a simple utilisation-driven governor, and the
arithmetic behind the ≤2% estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.hw.power import PowerConfig
from repro.hw.profiles import EngineProfile


@dataclass(frozen=True)
class FrequencyState:
    """One V/F operating point, relative to nominal."""

    name: str
    frequency_factor: float  # capacity scales ~ linearly with f

    def __post_init__(self) -> None:
        if not 0.1 <= self.frequency_factor <= 1.0:
            raise ValueError("frequency factor must be in [0.1, 1.0]")

    @property
    def power_factor(self) -> float:
        """Dynamic power ∝ f·V² with V ∝ f ⇒ cubic in f."""
        return self.frequency_factor**3


#: a BF-2-like ladder: 2.0 / 1.6 / 1.2 GHz
DEFAULT_LADDER: Tuple[FrequencyState, ...] = (
    FrequencyState("low", 0.6),
    FrequencyState("mid", 0.8),
    FrequencyState("nominal", 1.0),
)


class DvfsGovernor:
    """Pick the lowest V/F state whose capacity covers the load."""

    def __init__(
        self,
        ladder: Sequence[FrequencyState] = DEFAULT_LADDER,
        headroom: float = 1.15,
    ) -> None:
        if not ladder:
            raise ValueError("ladder must not be empty")
        self.ladder = tuple(
            sorted(ladder, key=lambda state: state.frequency_factor)
        )
        if self.ladder[-1].frequency_factor != 1.0:
            raise ValueError("ladder must include the nominal (1.0) state")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        self.headroom = headroom
        self.transitions = 0
        self._current = self.ladder[-1]

    @property
    def current(self) -> FrequencyState:
        return self._current

    def select(self, offered_gbps: float, nominal_capacity_gbps: float) -> FrequencyState:
        """Choose (and record) the state for the observed load."""
        if nominal_capacity_gbps <= 0:
            raise ValueError("capacity must be positive")
        needed = offered_gbps * self.headroom
        chosen = self.ladder[-1]
        for state in self.ladder:
            if state.frequency_factor * nominal_capacity_gbps >= needed:
                chosen = state
                break
        if chosen is not self._current:
            self.transitions += 1
            self._current = chosen
        return chosen


def estimate_system_savings(
    snic_profile: EngineProfile,
    utilization: float,
    power_config: Optional[PowerConfig] = None,
    ladder: Sequence[FrequencyState] = DEFAULT_LADDER,
) -> Tuple[float, float]:
    """(absolute watts saved, fraction of system power saved) from ideal
    SNIC DVFS at the given long-run utilisation.

    Implements the §VIII estimate: the governor picks the slowest state
    that still covers the load; savings apply only to the SNIC's dynamic
    power, which is single-digit watts against a ~200 W system.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    if power_config is None:
        power_config = PowerConfig()
    governor = DvfsGovernor(ladder)
    state = governor.select(
        utilization * snic_profile.capacity_gbps, snic_profile.capacity_gbps
    )
    nominal_watts = snic_profile.dynamic_power_w * utilization
    # at frequency f the same work runs at utilisation u/f but each active
    # cycle costs f^2 less energy: P = (u/f) · P_dyn · f^3 / 1 = u·P_dyn·f^2
    scaled_watts = nominal_watts * state.frequency_factor**2
    saved = nominal_watts - scaled_watts
    system_watts = power_config.system_idle_w + nominal_watts
    return saved, saved / system_watts
