"""Calibrated service/power profiles for every (function, platform) pair.

The simulator is a queueing model; these profiles are its coefficients,
calibrated against the numbers the paper reports (see the "Calibration
sources" section of DESIGN.md):

* ``capacity_gbps`` — maximum sustainable aggregate throughput of the
  engine (8 SNIC cores / 8 host cores / the accelerator block), read from
  Fig. 2, Table II, Fig. 4/9 knees, and Table V maxima;
* ``scaling_exponent`` — how capacity scales when fewer cores are active
  (``cap(n) = cap · (n/cores)^exp``); < 1 models memory-bound functions,
  calibrated so the Fig. 5 SLB core sweep lands near the paper's values;
* ``base_latency_us`` — the low-load latency floor (delivery + service),
  read from the low-rate p99 columns of Table V;
* ``dynamic_power_w`` — added system power at full engine utilisation
  (on top of idle/polling), calibrated to §III-B and Table V power.

The paper's SLO throughput (Table II) and its measured energy-efficiency
ratios are carried alongside so experiments can report paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, NamedTuple, Optional, Tuple

#: BlueField-2 line rate (Gbps) — upper bound for any engine.
LINE_RATE_GBPS = 100.0


@dataclass(frozen=True)
class EngineProfile:
    """Queueing-model coefficients for one engine running one function."""

    name: str
    capacity_gbps: float
    cores: int
    scaling_exponent: float
    base_latency_us: float
    dynamic_power_w: float
    accelerated: bool = False
    queue_capacity_packets: int = 256
    #: coefficient of variation of per-packet service time (0 = fixed).
    #: Functions with input-dependent work (KNN distance sets, EMA key
    #: batches, crypto op mixes, regex scans) queue long before their mean
    #: capacity — this is what puts Table II's SLO below the Fig. 2 max.
    service_cv: float = 0.0
    #: operating rate (Gbps) beyond which latency starts degrading even
    #: though throughput still grows — deeper pipeline/ring occupancy,
    #: contention, DVFS. None → no degradation until the capacity cliff.
    slo_knee_gbps: Optional[float] = None
    #: added latency (µs) when running at full capacity, ramping
    #: quadratically from the knee; calibrated to Fig. 4's latency rise
    #: and the Table V overload p99 values.
    overload_latency_us: float = 0.0
    #: fixed per-packet processing cost (µs) on top of the byte rate —
    #: what makes small packets pps-limited (§III-A: the 8-core SNIC CPU
    #: forwards only ~40 Gbps of 64 B packets against a 100 Gbps line).
    per_packet_overhead_us: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ValueError(f"{self.name}: capacity must be positive")
        if self.cores <= 0:
            raise ValueError(f"{self.name}: cores must be positive")
        if not 0.0 < self.scaling_exponent <= 1.5:
            raise ValueError(f"{self.name}: implausible scaling exponent")
        if self.base_latency_us < 0 or self.dynamic_power_w < 0:
            raise ValueError(f"{self.name}: negative latency/power")
        if not 0.0 <= self.service_cv <= 3.0:
            raise ValueError(f"{self.name}: implausible service_cv")
        if self.overload_latency_us < 0:
            raise ValueError(f"{self.name}: negative overload latency")
        if self.per_packet_overhead_us < 0:
            raise ValueError(f"{self.name}: negative per-packet overhead")
        if self.slo_knee_gbps is not None and not (
            0 < self.slo_knee_gbps <= self.capacity_gbps
        ):
            raise ValueError(f"{self.name}: knee must be in (0, capacity]")

    def capacity_with_cores(self, active_cores: int) -> float:
        """Aggregate capacity with only ``active_cores`` of ``cores``."""
        if not 1 <= active_cores <= self.cores:
            raise ValueError(
                f"active_cores must be in [1, {self.cores}] (got {active_cores})"
            )
        return self.capacity_gbps * (active_cores / self.cores) ** self.scaling_exponent

    def scaled(self, throughput_factor: float, latency_factor: float = 1.0,
               cores: Optional[int] = None, name: Optional[str] = None) -> "EngineProfile":
        """Derive a profile for a different hardware generation."""
        return replace(
            self,
            name=name or self.name,
            capacity_gbps=min(LINE_RATE_GBPS, self.capacity_gbps * throughput_factor),
            base_latency_us=self.base_latency_us * latency_factor,
            cores=cores if cores is not None else self.cores,
        )


class ServiceCosts(NamedTuple):
    """Pre-derived per-service constants for one (profile, active_cores).

    :class:`repro.hw.platform.ProcessingEngine` computes these once at
    construction instead of re-deriving unit conversions (µs → s,
    capacity → per-core bit rate, cv → cv²) on every packet service.
    Each field is a single converted coefficient — sums that the hot path
    adds term by term stay separate so the float results are bit-identical
    to the unconverted expressions.
    """

    #: per-core service rate in bits/s at the given active-core count
    per_core_bps: float
    #: fixed per-packet cost in seconds (``per_packet_overhead_us`` × 1e-6)
    per_packet_overhead_s: float
    #: low-load latency floor in seconds (``base_latency_us`` × 1e-6)
    base_latency_s: float
    #: full-ramp overload latency in seconds (``overload_latency_us`` × 1e-6)
    overload_latency_s: float
    #: squared coefficient of variation — the gamma-shape denominator
    service_cv_sq: float
    #: aggregate capacity in Gbps at the given active-core count
    capacity_gbps: float


@lru_cache(maxsize=None)
def service_costs(profile: EngineProfile, active_cores: int) -> ServiceCosts:
    """The :class:`ServiceCosts` table for ``profile`` at ``active_cores``.

    Cached per (profile, core-count) pair: profiles are frozen and every
    engine of a run shares the same handful of NF profiles, so repeated
    engine construction (sweeps, figure grids) hits the cache.
    """
    capacity_bps = profile.capacity_with_cores(active_cores) * 1e9
    per_core_bps = capacity_bps / active_cores
    return ServiceCosts(
        per_core_bps=per_core_bps,
        per_packet_overhead_s=profile.per_packet_overhead_us * 1e-6,
        base_latency_s=profile.base_latency_us * 1e-6,
        overload_latency_s=profile.overload_latency_us * 1e-6,
        service_cv_sq=profile.service_cv**2,
        capacity_gbps=per_core_bps * active_cores / 1e9,
    )


@dataclass(frozen=True)
class FunctionProfile:
    """Everything the experiments need to know about one function."""

    function: str
    snic: EngineProfile
    host: EngineProfile
    #: Table II: max SNIC rate without raising p99 ("SLO TP"), Gbps
    slo_gbps: float
    #: Table II: SNIC energy efficiency / host energy efficiency at SLO TP
    paper_snic_ee: float
    stateful: bool = False
    #: can SNIC and host split one packet stream (False for compression)
    cooperative: bool = True


def _snic(name: str, cap: float, lat: float, power: float, *, accel: bool = False,
          exp: float = 0.8, cores: int = 8, queue: int = 256,
          cv: float = 0.15, knee: float = None, overload: float = 0.0) -> EngineProfile:
    return EngineProfile(
        name=f"snic-{name}", capacity_gbps=cap, cores=cores,
        scaling_exponent=exp, base_latency_us=lat, dynamic_power_w=power,
        accelerated=accel, queue_capacity_packets=queue, service_cv=cv,
        slo_knee_gbps=knee, overload_latency_us=overload,
    )


def _host(name: str, cap: float, lat: float, power: float, *, accel: bool = False,
          exp: float = 0.9, cores: int = 8, queue: int = 512,
          cv: float = 0.15, knee: float = None, overload: float = 0.0) -> EngineProfile:
    return EngineProfile(
        name=f"host-{name}", capacity_gbps=cap, cores=cores,
        scaling_exponent=exp, base_latency_us=lat, dynamic_power_w=power,
        accelerated=accel, queue_capacity_packets=queue, service_cv=cv,
        slo_knee_gbps=knee, overload_latency_us=overload,
    )


#: The ten Table IV functions. SNIC capacities follow Table II SLO points
#: and Table V maxima; host capacities follow Table V "Host" maxima; the
#: NAT scaling exponent is fitted to the Fig. 5 four-core SLB result.
FUNCTION_PROFILES: Dict[str, FunctionProfile] = {
    "kvs": FunctionProfile(
        "kvs",
        snic=_snic("kvs", 4.0, 35.0, 5.0, cv=0.6, knee=3.0, overload=150.0),
        host=_host("kvs", 25.0, 13.0, 45.0, cv=0.6),
        slo_gbps=3.0, paper_snic_ee=1.19, stateful=True,
    ),
    "count": FunctionProfile(
        "count",
        snic=_snic("count", 58.5, 16.0, 6.0, cv=0.1),
        host=_host("count", 99.0, 10.0, 55.0, cv=0.1),
        slo_gbps=58.0, paper_snic_ee=1.41, stateful=True,
    ),
    "ema": FunctionProfile(
        "ema",
        snic=_snic("ema", 12.0, 45.0, 5.0, cv=1.2, knee=6.0, overload=1000.0),
        host=_host("ema", 60.0, 22.0, 50.0, cv=1.2, knee=48.0, overload=200.0),
        slo_gbps=6.0, paper_snic_ee=1.17, stateful=True,
    ),
    "nat": FunctionProfile(
        "nat",
        # exponent 0.31: memory-bound NAT; 4 cores retain ~80% of capacity,
        # matching the Fig. 5 SLB experiment (§IV)
        snic=_snic("nat", 41.5, 22.0, 6.0, exp=0.31, cv=0.1),
        host=_host("nat", 90.0, 12.0, 70.0, cv=0.1),
        slo_gbps=41.0, paper_snic_ee=1.31,
    ),
    "bm25": FunctionProfile(
        "bm25",
        snic=_snic("bm25", 1.1, 60.0, 5.0, cv=0.4),
        host=_host("bm25", 4.5, 22.0, 45.0, cv=0.4),
        slo_gbps=1.0, paper_snic_ee=1.18,
    ),
    "knn": FunctionProfile(
        "knn",
        snic=_snic("knn", 15.6, 70.0, 5.0, cv=1.2, knee=7.0, overload=2200.0),
        host=_host("knn", 31.5, 32.0, 45.0, cv=1.2, knee=25.0, overload=400.0),
        slo_gbps=7.0, paper_snic_ee=1.17,
    ),
    "bayes": FunctionProfile(
        "bayes",
        snic=_snic("bayes", 0.12, 80.0, 5.0, cv=0.5),
        host=_host("bayes", 0.55, 38.0, 40.0, cv=0.5),
        slo_gbps=0.1, paper_snic_ee=1.14,
    ),
    "rem": FunctionProfile(
        "rem",
        # the REM accelerator (max 50 Gbps, §III-A); SLO knee at 30 Gbps
        snic=_snic("rem", 43.0, 26.0, 7.0, accel=True, exp=1.0, cores=2, cv=0.7, knee=30.0, overload=600.0),
        host=_host("rem", 93.6, 14.0, 50.0, cv=0.3),
        slo_gbps=30.0, paper_snic_ee=1.38,
    ),
    "crypto": FunctionProfile(
        "crypto",
        snic=_snic("crypto", 50.0, 32.0, 8.0, accel=True, exp=1.0, cores=2, cv=1.0, knee=28.0, overload=600.0),
        host=_host("crypto", 93.5, 13.0, 85.0, accel=True, cv=1.0, knee=75.0, overload=250.0),
        slo_gbps=28.0, paper_snic_ee=1.33,
    ),
    "compress": FunctionProfile(
        "compress",
        # the one function where the SNIC accelerator beats the host QAT in
        # throughput (host = 46–72% of SNIC) at 2.1–3.3x lower latency
        snic=_snic("compress", 45.0, 20.0, 8.0, accel=True, exp=1.0, cores=2, cv=0.2),
        host=_host("compress", 27.0, 52.0, 60.0, accel=True, cv=0.2),
        slo_gbps=43.0, paper_snic_ee=1.55, cooperative=False,
    ),
}

#: Table V pipelined compositions — capacities read from the Table V grid
#: rather than derived, because the second stage runs on the first stage's
#: (smaller) output volume.
_PIPELINE_SPECS: Dict[str, Tuple[float, float, float, float]] = {
    # name: (snic_cap, host_cap, snic_slo, host_extra_power_w)
    "nat+rem": (31.5, 84.0, 29.0, 95.0),
    "nat+crypto": (42.5, 84.0, 40.0, 120.0),
    "count+rem": (31.0, 85.0, 29.0, 85.0),
    "count+crypto": (46.0, 85.0, 43.0, 130.0),
}

for _name, (_scap, _hcap, _slo, _hpw) in _PIPELINE_SPECS.items():
    _first, _, _second = _name.partition("+")
    _fp, _sp = FUNCTION_PROFILES[_first], FUNCTION_PROFILES[_second]
    FUNCTION_PROFILES[_name] = FunctionProfile(
        _name,
        snic=_snic(
            _name, _scap,
            _fp.snic.base_latency_us + _sp.snic.base_latency_us,
            max(_fp.snic.dynamic_power_w, _sp.snic.dynamic_power_w) + 1.0,
            exp=0.6,
        ),
        host=_host(
            _name, _hcap,
            _fp.host.base_latency_us + _sp.host.base_latency_us,
            _hpw,
        ),
        slo_gbps=_slo,
        paper_snic_ee=1.30,
        stateful=_fp.stateful or _sp.stateful,
    )

#: Special profiles for the Fig. 2 comparisons that use different
#: operating modes than the packet-stream profiles above.
SPECIAL_PROFILES: Dict[str, FunctionProfile] = {
    # REM with the complex snort_literals ruleset: the SNIC accelerator
    # wins 19x in throughput over the host CPU (§III-A)
    "rem-lite": FunctionProfile(
        "rem-lite",
        snic=_snic("rem-lite", 50.0, 26.0, 7.0, accel=True, exp=1.0, cores=2),
        host=_host("rem-lite", 2.6, 430.0, 50.0),
        slo_gbps=30.0, paper_snic_ee=1.38,
    ),
    # raw public-key-op benchmark: host QAT + big memory subsystem beats
    # the SNIC PKA block by 24–115x (§III-A); units are op-rate-equivalent
    "crypto-pka": FunctionProfile(
        "crypto-pka",
        snic=_snic("crypto-pka", 1.0, 500.0, 8.0, accel=True, exp=1.0, cores=2),
        host=_host("crypto-pka", 40.0, 12.0, 85.0, accel=True),
        slo_gbps=0.5, paper_snic_ee=1.33,
    ),
    # plain DPDK forwarding: both reach line rate at MTU (the SNIC CPU at
    # 4.7x the host's p99), but the SNIC's per-packet overhead caps 64 B
    # packets at ~40 Gbps against the 100 Gbps line (§III-A)
    "dpdk-fwd": FunctionProfile(
        "dpdk-fwd",
        snic=EngineProfile(
            name="snic-dpdk-fwd", capacity_gbps=107.0, cores=8,
            scaling_exponent=1.0, base_latency_us=28.0, dynamic_power_w=5.0,
            service_cv=0.15, per_packet_overhead_us=0.0614,
        ),
        host=EngineProfile(
            name="host-dpdk-fwd", capacity_gbps=102.0, cores=8,
            scaling_exponent=1.0, base_latency_us=6.0, dynamic_power_w=40.0,
            service_cv=0.15, per_packet_overhead_us=0.004,
            queue_capacity_packets=512,
        ),
        slo_gbps=58.0, paper_snic_ee=1.40,
    ),
}


def get_profile(function: str) -> FunctionProfile:
    """Profile for a registry function name (or special Fig. 2 mode)."""
    profile = FUNCTION_PROFILES.get(function) or SPECIAL_PROFILES.get(function)
    if profile is None:
        raise KeyError(f"no profile for function {function!r}")
    return profile


# ---------------------------------------------------------------------------
# next-generation platforms (Fig. 10): BlueField-3 CPU vs Sapphire Rapids
# ---------------------------------------------------------------------------

#: software-only functions compared in Fig. 10
FIG10_FUNCTIONS = ("kvs", "count", "ema", "nat", "bm25", "knn", "bayes")

#: BF-3: 2x cores, 3.5x memory bandwidth over the BF-2 CPU — roughly 2x
#: function throughput, still line-limited at 100 Gbps by the client.
BF3_THROUGHPUT_FACTOR = 2.0
#: Sapphire Rapids: similar generational scaling on the host side.
SPR_THROUGHPUT_FACTOR = 2.5
SPR_LATENCY_FACTOR = 0.8


def bf3_profile(function: str) -> EngineProfile:
    base = get_profile(function).snic
    return base.scaled(
        BF3_THROUGHPUT_FACTOR, cores=16, name=f"bf3-{function}"
    )


def spr_profile(function: str) -> EngineProfile:
    base = get_profile(function).host
    return base.scaled(
        SPR_THROUGHPUT_FACTOR, SPR_LATENCY_FACTOR, cores=16, name=f"spr-{function}"
    )
