"""Interconnect latency models (PCIe, UPI).

Section III-A measures the packet-delivery asymmetries that matter for
load balancing: both processors receive packets through the SNIC's PCIe
switch, so the SNIC CPU sees packets only ~0.3 µs earlier than the host
CPU, and a host CPU on the remote socket of a dual-socket server pays a
further ~0.5 µs UPI hop. These constants feed the engines'
``delivery_latency_s``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Interconnect:
    """A point-to-point delivery path with fixed latency and bandwidth."""

    name: str
    latency_s: float
    bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError(f"{self.name}: latency cannot be negative")
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")

    def transfer_time_s(self, nbytes: int) -> float:
        """Latency plus serialisation for an ``nbytes`` transfer."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        return self.latency_s + nbytes * 8 / (self.bandwidth_gbps * 1e9)


#: eSwitch → SNIC CPU across the on-chip PCIe fabric.
ONCHIP_PCIE = Interconnect("onchip-pcie", latency_s=0.9e-6, bandwidth_gbps=128.0)
#: eSwitch → host CPU across the SNIC's PCIe switch (+~0.3 µs vs SNIC CPU).
OFFCHIP_PCIE = Interconnect("offchip-pcie", latency_s=1.2e-6, bandwidth_gbps=126.0)
#: additional socket-to-socket hop for a remote-socket host CPU.
UPI_HOP = Interconnect("upi-hop", latency_s=0.5e-6, bandwidth_gbps=83.2)


def host_delivery_latency_s(remote_socket: bool = False) -> float:
    """Delivery latency from the eSwitch to the host CPU."""
    latency = OFFCHIP_PCIE.latency_s
    if remote_socket:
        latency += UPI_HOP.latency_s
    return latency


def snic_delivery_latency_s() -> float:
    """Delivery latency from the eSwitch to the SNIC CPU/accelerators."""
    return ONCHIP_PCIE.latency_s
