"""Host platform descriptors and engine factories.

Encodes the evaluation server of Table III (dual-socket Intel Xeon Gold
6140 "Skylake", QAT adapter, 256 GB DDR4) and the Sapphire Rapids
successor of Fig. 10, and builds calibrated host-side
:class:`~repro.hw.platform.ProcessingEngine` instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hw.pcie import host_delivery_latency_s
from repro.hw.platform import ProcessingEngine
from repro.hw.profiles import EngineProfile, get_profile, spr_profile
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class HostDescriptor:
    """Static description of a host processor configuration."""

    model: str
    sockets: int
    cores: int
    base_ghz: float
    llc_mb: int
    memory: str
    accelerators: Tuple[str, ...]
    idle_power_w: float  # server idle, SNIC included


SKYLAKE_SERVER = HostDescriptor(
    model="Intel Xeon Gold 6140 (Skylake)",
    sockets=2,
    cores=36,
    base_ghz=2.2,  # userspace governor, TDP-constrained max (§VI)
    llc_mb=100,
    memory="256 GB DDR4-2666, 12 channels",
    accelerators=("qat", "aes-ni", "sha", "avx"),
    idle_power_w=194.0,
)

SAPPHIRE_RAPIDS_SERVER = HostDescriptor(
    model="Intel Xeon Sapphire Rapids",
    sockets=2,
    cores=64,
    base_ghz=2.4,
    llc_mb=120,
    memory="DDR5, 16 channels",
    accelerators=("qat", "dsa", "iaa", "aes-ni", "sha", "avx"),
    idle_power_w=210.0,
)


def host_engine_profile(function: str, generation: str = "skylake") -> EngineProfile:
    """The host-side profile for ``function`` on the given generation."""
    if generation == "skylake":
        return get_profile(function).host
    if generation == "spr":
        return spr_profile(function)
    raise ValueError(f"unknown host generation {generation!r}")


def make_host_engine(
    sim: Simulator,
    function: str,
    generation: str = "skylake",
    name: Optional[str] = None,
    name_prefix: str = "",
    remote_socket: bool = False,
    **engine_kwargs,
) -> ProcessingEngine:
    """A ready-to-use host processing engine for ``function``.

    The engine sits behind the SNIC's PCIe switch (off-chip crossing);
    ``remote_socket=True`` adds the UPI hop of a dual-socket server.
    ``name_prefix`` namespaces the engine per server in a rack.
    """
    profile = host_engine_profile(function, generation)
    engine_kwargs.setdefault(
        "delivery_latency_s", host_delivery_latency_s(remote_socket)
    )
    return ProcessingEngine(
        sim, profile, name=name or (name_prefix + profile.name), **engine_kwargs
    )
