"""Processing-engine queueing model.

Every packet consumer in the system — the 8 wimpy SNIC Arm cores, the
SNIC's REM/crypto/compression accelerator blocks, the 8 host Xeon cores,
the host QAT — is an instance of :class:`ProcessingEngine`: ``n`` servers
fed by per-server Rx rings (RSS by flow hash), with per-packet service
time derived from the engine's calibrated capacity
(:class:`repro.hw.profiles.EngineProfile`).

The engine also implements the two behaviours the paper's systems build
on:

* **DPDK observables** — ring occupancy (``rx_queue_occupancy``) and
  delivered-bit counters, which Algorithm 1 (LBP) polls;
* **core sleep/wake** — the DPDK power-management API HAL uses to let
  idle host cores sleep (§V-B), with the wake-up penalty the paper notes
  shows up in host-side p99.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.hw.profiles import EngineProfile, service_costs
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.metrics import LatencyReservoir, RunMetrics


@dataclass
class PacketRing:
    """A bounded Rx ring accounted in *packets* (batched events carry
    ``multiplicity`` packets each, as a real descriptor ring would)."""

    capacity_packets: int
    items: Deque[Packet] = field(default_factory=deque)
    occupancy_packets: int = 0
    dropped_packets: int = 0
    enqueued_packets: int = 0

    def push(self, packet: Packet) -> bool:
        if self.occupancy_packets + packet.multiplicity > self.capacity_packets:
            self.dropped_packets += packet.multiplicity
            return False
        self.items.append(packet)
        self.occupancy_packets += packet.multiplicity
        self.enqueued_packets += packet.multiplicity
        return True

    def pop(self) -> Optional[Packet]:
        if not self.items:
            return None
        packet = self.items.popleft()
        self.occupancy_packets -= packet.multiplicity
        return packet

    def __len__(self) -> int:
        return len(self.items)


class ProcessingEngine:
    """``n``-server queueing station with calibrated service rates."""

    def __init__(
        self,
        sim: Simulator,
        profile: EngineProfile,
        name: Optional[str] = None,
        active_cores: Optional[int] = None,
        nf: Optional[object] = None,
        functional_rate: float = 0.0,
        state_domain: Optional[object] = None,
        state_agent: Optional[str] = None,
        delivery_latency_s: float = 0.0,
        on_complete: Optional[Callable[[Packet], None]] = None,
        on_power_change: Optional[Callable[["ProcessingEngine"], None]] = None,
        metrics: Optional[RunMetrics] = None,
        sleep_enabled: bool = False,
        wake_latency_s: float = 30e-6,
        sleep_after_idle_s: float = 200e-6,
        forward_stage: bool = False,
        dispatch: str = "roundrobin",
        service_jitter: float = 0.0,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.name = name or profile.name
        self.active_cores = active_cores if active_cores is not None else profile.cores
        if not 1 <= self.active_cores <= profile.cores:
            raise ValueError(
                f"{self.name}: active_cores must be in [1, {profile.cores}]"
            )
        self.nf = nf
        if not 0.0 <= functional_rate <= 1.0:
            raise ValueError("functional_rate must be in [0, 1]")
        self.functional_rate = functional_rate
        self.state_domain = state_domain
        self.state_agent = state_agent or self.name
        self.delivery_latency_s = delivery_latency_s
        self.on_complete = on_complete
        self.on_power_change = on_power_change
        self.metrics = metrics
        #: a forward stage passes the *original* packet downstream and does
        #: not record end-to-end latency (an SLB forwarding hop, not an NF)
        self.forward_stage = forward_stage
        # "roundrobin" models RSS over a large well-mixed flow population
        # (per-queue load stays balanced); "flow" pins flows to queues
        if dispatch not in ("roundrobin", "flow"):
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self.dispatch = dispatch
        self._dispatch_counter = 0
        # mean-preserving uniform service-time jitter: software stages
        # (rx_burst loops) are bursty, hardware pipelines are not
        if not 0.0 <= service_jitter < 1.0:
            raise ValueError("service_jitter must be in [0, 1)")
        self.service_jitter = service_jitter
        # gamma-distributed per-packet service when the profile declares a
        # coefficient of variation (input-dependent work, §III / Table II)
        self.service_cv = profile.service_cv
        # zlib.crc32 rather than hash(): str hashing is randomized per
        # interpreter invocation, which would make otherwise-identical runs
        # (and the runner's content-addressed cache) non-reproducible
        self._jitter_rng = random.Random(zlib.crc32(self.name.encode()) & 0xFFFF)

        # delivered-rate EWMA feeding the overload-latency model: engines
        # running above their SLO knee hold work in deeper pipeline/ring
        # occupancy, so latency degrades before throughput does (§III-C)
        self._rate_tau_s = 2e-3
        self._rate_bps_ewma = 0.0
        self._rate_last_t = sim.now

        # pre-derived per-service constants (unit conversions, per-core
        # rate, cv²) — see repro.hw.profiles.service_costs. Profiles are
        # frozen and engine coefficients never change after construction,
        # so the hot path reads these instead of converting per packet.
        costs = service_costs(profile, self.active_cores)
        self._per_core_bps = costs.per_core_bps
        self._per_packet_overhead_s = costs.per_packet_overhead_s
        self._base_latency_s = costs.base_latency_s
        self._overload_ramp_s = costs.overload_latency_s
        self._service_cv_sq = costs.service_cv_sq
        self._capacity_gbps = costs.capacity_gbps
        # the forward-stage back-dating charge, summed exactly as the hot
        # path's parenthesized (base + delivery) expression did
        self._forward_charge_s = costs.base_latency_s + delivery_latency_s
        self._rings: List[PacketRing] = [
            PacketRing(profile.queue_capacity_packets)
            for _ in range(self.active_cores)
        ]
        self._core_busy: List[bool] = [False] * self.active_cores
        # running count of True entries in _core_busy: busy_cores (and the
        # power model's utilization reads through it) is on the per-service
        # path, so it must not re-sum the list every transition
        self._busy_count = 0
        # packets that finished service but are still in flight through the
        # deepened pipeline while the engine runs above its SLO knee; they
        # count toward the observable ring occupancy (backpressure)
        self._in_pipeline: List[int] = [0] * self.active_cores

        # sleep management (host cores under HAL)
        self.sleep_enabled = sleep_enabled
        self.wake_latency_s = wake_latency_s
        self.sleep_after_idle_s = sleep_after_idle_s
        self.sleeping = sleep_enabled  # start asleep if allowed
        self._waking = False
        self.wake_count = 0

        # counters
        self.delivered_packets = 0
        self.delivered_bits = 0
        self.dropped_packets = 0
        self.received_packets = 0
        self.latency = LatencyReservoir()
        self._functional_accumulator = 0.0
        self._seq = 0

        # observability (repro.obs): untraced engines keep _tracer=None
        # and the service path pays one is-not-None branch per core
        # busy/idle transition (never per packet)
        self._tracer = None
        self._busy_since: List[float] = []

    def enable_tracing(self, tracer) -> None:
        """Record per-core busy spans into a ``repro.obs`` tracer.

        A span covers one contiguous busy period of one core (back-to-
        back services coalesce), emitted on the ``<engine>/c<n>`` track
        when the core goes idle."""
        self._tracer = tracer
        self._busy_since = [0.0] * self.active_cores

    # -- observables (DPDK APIs) ---------------------------------------
    def rx_queue_occupancy(self) -> int:
        """Max per-queue backlog in packets (``rte_eth_rx_queue_count``).

        Includes packets held in a deepened accelerator pipeline during
        overload — exactly the backpressure a hardware input FIFO exposes,
        and the signal Algorithm 1 throttles on.
        """
        return max(
            ring.occupancy_packets + pipelined
            for ring, pipelined in zip(self._rings, self._in_pipeline)
        )

    def total_queued_packets(self) -> int:
        return sum(ring.occupancy_packets for ring in self._rings) + sum(
            self._in_pipeline
        )

    @property
    def busy_cores(self) -> int:
        return self._busy_count

    @property
    def utilization(self) -> float:
        return self._busy_count / self.active_cores

    @property
    def capacity_gbps(self) -> float:
        return self._capacity_gbps

    # -- data path -------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        """Packet delivered to this engine's Rx rings (RSS by flow)."""
        multiplicity = packet.multiplicity
        self.received_packets += multiplicity
        if self.dispatch == "roundrobin":
            core = self._dispatch_counter % self.active_cores
            self._dispatch_counter += 1
        else:
            core = packet.flow_id % self.active_cores
        ring = self._rings[core]
        if not ring.push(packet):
            self.dropped_packets += multiplicity
            if self.metrics is not None:
                self.metrics.dropped_packets += multiplicity
            return
        if self.sleeping:
            self._begin_wake()
            return
        if not self._core_busy[core]:
            self._start_service(core)

    def _begin_wake(self) -> None:
        if self._waking:
            return
        self._waking = True
        self.wake_count += 1

        def wake() -> None:
            self.sleeping = False
            self._waking = False
            self._notify_power()
            for core in range(self.active_cores):
                if not self._core_busy[core] and self._rings[core].items:
                    self._start_service(core)

        self.sim.schedule(self.wake_latency_s, wake)

    def _start_service(self, core: int) -> None:
        packet = self._rings[core].pop()
        if packet is None:
            return
        if not self._core_busy[core]:
            self._core_busy[core] = True
            self._busy_count += 1
            if self._tracer is not None:
                self._busy_since[core] = self.sim._now
        callback = self.on_power_change
        if callback is not None:
            callback(self)
        multiplicity = packet.multiplicity
        service_s = packet.size_bytes * 8 * multiplicity / self._per_core_bps
        if self._per_packet_overhead_s > 0:
            # fixed per-packet cost: descriptor handling, header parsing —
            # dominates for small packets (§III-A)
            service_s += self._per_packet_overhead_s * multiplicity
        if self.service_cv > 0:
            # mean-preserving gamma draw; a batched event of B packets
            # averages B draws, so its relative spread shrinks by sqrt(B)
            shape = multiplicity / self._service_cv_sq
            service_s *= self._jitter_rng.gammavariate(shape, 1.0 / shape)
        if self.service_jitter:
            service_s *= 1.0 + self.service_jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        if self.state_domain is not None:
            service_s += self._coherence_stall(packet)
        self.sim.schedule(service_s, self._finish_service, core, packet)

    def _coherence_stall(self, packet: Packet) -> float:
        if self.state_domain is None:
            return 0.0
        # one coherence transaction per service event, keyed by flow: the
        # cores batch state updates across a burst (the paper measures only
        # 0.3-3% throughput/latency impact from NUMA-shared state, §VII-B)
        return self.state_domain.access(self.state_agent, packet.flow_id, write=True)

    def _update_rate_ewma(self, wire_bits: int) -> None:
        now = self.sim._now
        dt = now - self._rate_last_t
        if dt > 0:
            self._rate_bps_ewma *= math.exp(-dt / self._rate_tau_s)
            self._rate_last_t = now
        self._rate_bps_ewma += wire_bits / self._rate_tau_s

    def _overload_latency_s(self) -> float:
        knee = self.profile.slo_knee_gbps
        if knee is None or self._overload_ramp_s <= 0:
            return 0.0
        cap = self._capacity_gbps
        if cap <= knee:
            return 0.0
        frac = (self._rate_bps_ewma / 1e9 - knee) / (cap - knee)
        if frac <= 0:
            return 0.0
        return self._overload_ramp_s * min(1.0, frac) ** 2

    def _finish_service(self, core: int, packet: Packet) -> None:
        multiplicity = packet.multiplicity
        wire_bits = packet.size_bytes * 8 * multiplicity
        self.delivered_packets += multiplicity
        self.delivered_bits += wire_bits
        self._update_rate_ewma(wire_bits)
        if self.forward_stage:
            # mid-path hop: charge its delivery latency by back-dating the
            # packet and hand the original packet to the next stage
            packet.created_at -= self._forward_charge_s
            if self.on_complete is not None:
                self.on_complete(packet)
        else:
            overload_s = self._overload_latency_s()
            if overload_s > 0:
                # overload deepens the pipeline: completion is delayed and
                # the packet keeps occupying the observable input backlog
                self._in_pipeline[core] += multiplicity
                self.sim.schedule(overload_s, self._deliver, core, packet, True)
            else:
                self._deliver(core, packet, False)
        if self._rings[core].items:
            self._start_service(core)
        else:
            self._core_busy[core] = False
            self._busy_count -= 1
            if self._tracer is not None:
                self._tracer.span(
                    f"{self.name}/c{core}",
                    "busy",
                    self._busy_since[core],
                    self.sim._now,
                )
            callback = self.on_power_change
            if callback is not None:
                callback(self)
            if self.sleep_enabled and self._busy_count == 0:
                self._schedule_sleep_check()

    def _deliver(self, core: int, packet: Packet, pipelined: bool) -> None:
        multiplicity = packet.multiplicity
        if pipelined:
            self._in_pipeline[core] -= multiplicity
        packet.processed_by = self.name
        # midpoint correction: a batched event of B wire packets is served
        # as one block, but the representative (median) packet finishes
        # half a block earlier than the block completion
        batch_service = packet.size_bytes * 8 * multiplicity / self._per_core_bps
        midpoint = batch_service * (multiplicity - 1) / (2 * multiplicity)
        latency = (
            self.sim._now
            - packet.created_at
            + self._base_latency_s
            + self.delivery_latency_s
            - midpoint
        )
        latency = max(latency, batch_service / multiplicity)
        self.latency.record(latency)
        metrics = self.metrics
        if metrics is not None:
            metrics.delivered_packets += multiplicity
            metrics.delivered_bytes += packet.size_bytes * multiplicity
            metrics.latency.record(latency)
        self._maybe_run_function(packet)
        if self.on_complete is not None:
            self.on_complete(packet.make_response())

    def _maybe_run_function(self, packet: Packet) -> None:
        """Execute the real NF on a sampled fraction of packets.

        Running the genuine computation for every wire packet would make
        100 Gbps simulation infeasible in Python, so ``functional_rate``
        controls the sampled fraction; the accumulated fraction is exact
        over time (no RNG needed).
        """
        if self.nf is None or self.functional_rate <= 0.0:
            return
        self._functional_accumulator += self.functional_rate * packet.multiplicity
        while self._functional_accumulator >= 1.0:
            self._functional_accumulator -= 1.0
            self._seq += 1
            request = packet.payload
            if request is None:
                request = self.nf.make_request(self._seq, packet.flow_id)
            self.nf.process(request)

    def _schedule_sleep_check(self) -> None:
        scheduled_at = self.sim.now

        def maybe_sleep() -> None:
            if (
                self.sleep_enabled
                and not self.sleeping
                and self.busy_cores == 0
                and self.total_queued_packets() == 0
                and self.sim.now - scheduled_at >= self.sleep_after_idle_s * 0.999
            ):
                self.sleeping = True
                self._notify_power()

        self.sim.schedule(self.sleep_after_idle_s, maybe_sleep)

    def _notify_power(self) -> None:
        if self.on_power_change is not None:
            self.on_power_change(self)

    # -- reporting ---------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "received_packets": self.received_packets,
            "delivered_packets": self.delivered_packets,
            "dropped_packets": self.dropped_packets,
            "delivered_gbit": self.delivered_bits / 1e9,
            "p99_latency_us": self.latency.p99() * 1e6,
            "mean_latency_us": self.latency.mean * 1e6,
        }
