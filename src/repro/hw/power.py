"""System-wide power model (§III-B calibration).

The paper measures *system* power through DCMI/BMC: the server idles at
194 W (SNIC plugged in, idle), the SNIC adds single-digit watts when
active, and the host side adds tens of watts for busy-polling DPDK cores
plus function-dependent dynamic power up to the 219–336 W loaded range.
Energy efficiency is throughput divided by this system power, which is
why SNIC processing wins at low rates: it avoids the host's polling and
dynamic power entirely while adding almost nothing itself.

:class:`PowerModel` tracks every :class:`~repro.hw.platform.ProcessingEngine`
and integrates component power over simulated time:

* host engines: ``poll_w_per_core × cores`` while awake (DPDK busy-poll),
  plus ``dynamic_power_w × utilisation`` while processing;
* SNIC engines: ``dynamic_power_w × utilisation`` (the 29 W SNIC idle
  floor is part of the system idle);
* constant adders (e.g. the HLB FPGA's <0.1 W).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.hw.platform import ProcessingEngine
from repro.sim.engine import Simulator
from repro.sim.metrics import PowerIntegrator, TimeSeries

ROLE_HOST = "host"
ROLE_SNIC = "snic"


@dataclass(frozen=True)
class PowerConfig:
    """Calibrated system power coefficients (§III-B)."""

    system_idle_w: float = 194.0
    snic_idle_w: float = 29.0  # informational: included in system_idle_w
    host_poll_w_per_core: float = 6.0
    hlb_fpga_w: float = 0.1
    dcmi_sample_period_s: float = 1.0
    #: whole-server deep sleep (suspend-to-RAM class): the rack autoscaler
    #: drops an idle server's 194 W floor to this while it is parked.
    #: Derived from typical S3 draw of a 2-socket server, not paper-anchored.
    server_sleep_w: float = 18.0

    def __post_init__(self) -> None:
        if self.system_idle_w <= 0:
            raise ValueError("system idle power must be positive")
        if self.host_poll_w_per_core < 0 or self.hlb_fpga_w < 0:
            raise ValueError("power coefficients cannot be negative")
        if not 0 <= self.server_sleep_w <= self.system_idle_w:
            raise ValueError("server sleep power must be in [0, system idle]")


class PowerModel:
    """Integrates component power and provides DCMI-style sampling."""

    def __init__(self, sim: Simulator, config: Optional[PowerConfig] = None) -> None:
        self.sim = sim
        self.config = config = config if config is not None else PowerConfig()
        self.integrator = PowerIntegrator(start_time=sim.now)
        self.integrator.set_level("idle", config.system_idle_w, sim.now)
        self._roles: Dict[str, str] = {}
        self.samples = TimeSeries(name="dcmi-system-watts")
        #: whole-server deep-sleep flag (rack autoscaler); see set_server_asleep
        self.server_asleep = False
        #: repro.obs tracer; None (untraced) costs one branch per sample
        self.tracer = None

    def enable_tracing(self, tracer) -> None:
        """Mirror DCMI samples (and probe-pump reads) into a tracer."""
        self.tracer = tracer

    def trace_sample(self) -> None:
        """Emit the instantaneous power picture as tracer counters —
        system watts plus the SNIC/host dynamic split.  The probe pump
        calls this each interval; DCMI sampling also feeds the system
        counter when :meth:`start_sampling` is active."""
        tracer = self.tracer
        if tracer is None:
            return
        now = self.sim.now
        tracer.counter("power", "system_w", now, self.integrator.instantaneous_watts())
        for name, role in self._roles.items():
            level = self.integrator._levels.get(name, 0.0)
            tracer.counter("power", f"{role}:{name}_w", now, level)

    # -- engine tracking -------------------------------------------------
    def track(self, engine: ProcessingEngine, role: str) -> None:
        """Attach ``engine`` to the model; called once after construction."""
        if role not in (ROLE_HOST, ROLE_SNIC):
            raise ValueError(f"unknown power role {role!r}")
        if engine.name in self._roles:
            raise ValueError(f"engine {engine.name!r} already tracked")
        self._roles[engine.name] = role
        # bake the per-engine constants (name, role, dynamic power, the
        # host polling draw) into the callback: power updates fire on
        # every busy/idle transition, so the hot path is one utilization
        # read and one integrator update with no dict lookups
        name = engine.name
        dynamic_w = engine.profile.dynamic_power_w
        poll_w = self.config.host_poll_w_per_core
        integrator = self.integrator
        sim = self.sim

        if role == ROLE_HOST:

            def changed(e: ProcessingEngine) -> None:
                # same reads as the utilization/now properties, sans the
                # descriptor calls — this fires on every busy/idle edge
                watts = dynamic_w * (e._busy_count / e.active_cores)
                if not e.sleeping:
                    watts += poll_w * e.active_cores
                integrator.set_level(name, watts, sim._now)

        else:

            def changed(e: ProcessingEngine) -> None:
                integrator.set_level(
                    name, dynamic_w * (e._busy_count / e.active_cores), sim._now
                )

        engine.on_power_change = changed
        changed(engine)

    def _engine_changed(self, engine: ProcessingEngine) -> None:
        """Recompute one tracked engine's power level (slow path; the
        per-transition callback installed by :meth:`track` is the fast
        path with identical arithmetic)."""
        role = self._roles.get(engine.name)
        if role is None:
            return
        watts = engine.profile.dynamic_power_w * engine.utilization
        if role == ROLE_HOST and not engine.sleeping:
            watts += self.config.host_poll_w_per_core * engine.active_cores
        self.integrator.set_level(engine.name, watts, self.sim.now)

    def set_constant(self, component: str, watts: float) -> None:
        """Add a fixed draw (e.g. the HLB FPGA datapath)."""
        self.integrator.set_level(component, watts, self.sim.now)

    # -- whole-server deep sleep (rack autoscaler) -----------------------
    def set_server_asleep(self, asleep: bool) -> None:
        """Drop (or restore) the system idle floor for server deep sleep.

        The rack autoscaler parks drained servers: the 194 W idle floor
        falls to ``server_sleep_w`` while every tracked engine is quiet
        (the caller is responsible for having put engines to sleep first,
        so their dynamic/polling levels are already zero)."""
        if asleep == self.server_asleep:
            return
        self.server_asleep = asleep
        level = (
            self.config.server_sleep_w if asleep else self.config.system_idle_w
        )
        self.integrator.set_level("idle", level, self.sim.now)
        if self.tracer is not None:
            self.tracer.counter("power", "server_asleep", self.sim.now, float(asleep))

    # -- DCMI sampling ------------------------------------------------------
    def start_sampling(self) -> None:
        """Sample instantaneous system power once per DCMI period."""

        def sample() -> None:
            watts = self.integrator.instantaneous_watts()
            self.samples.append(self.sim.now, watts)
            if self.tracer is not None:
                self.tracer.counter("power", "dcmi_w", self.sim.now, watts)

        self.sim.every(self.config.dcmi_sample_period_s, sample)

    # -- reporting ----------------------------------------------------------
    def average_watts(self) -> float:
        return self.integrator.average_watts(self.sim.now)

    def breakdown(self) -> Dict[str, float]:
        return {
            component: self.integrator.average_watts(self.sim.now, component)
            for component in self.integrator.components()
        }

    def snic_host_split(self) -> Tuple[float, float]:
        """(snic_watts, host_watts) time-averaged dynamic components."""
        snic = host = 0.0
        for name, role in self._roles.items():
            watts = self.integrator.average_watts(self.sim.now, name)
            if role == ROLE_SNIC:
                snic += watts
            else:
                host += watts
        return snic, host
