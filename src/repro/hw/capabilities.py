"""Table I — which BlueField-2 functions the host can also accelerate.

The host processor accelerates functions two ways: ISA extensions
(AES-NI, SHA, AVX, RDRAND/RDSEED via ISA-L/OpenSSL) and the QAT adapter.
Table I enumerates the overlap with BF-2's accelerator functions; this
module encodes it verbatim and offers the queries Fig. 2's grouping
logic needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class AcceleratorSupport:
    function: str
    isa: bool
    qat: bool

    @property
    def host_accelerated(self) -> bool:
        return self.isa or self.qat


#: Table I, row by row.
TABLE1: Tuple[AcceleratorSupport, ...] = (
    AcceleratorSupport("SHA", isa=True, qat=True),
    AcceleratorSupport("RSA", isa=True, qat=True),
    AcceleratorSupport("EC-DH", isa=True, qat=True),
    AcceleratorSupport("AES", isa=True, qat=True),
    AcceleratorSupport("DSA", isa=True, qat=True),
    AcceleratorSupport("EC-DSA", isa=True, qat=True),
    AcceleratorSupport("Deflate", isa=True, qat=True),
    AcceleratorSupport("RAND", isa=True, qat=True),
    AcceleratorSupport("GHASH", isa=True, qat=False),
    AcceleratorSupport("HMAC", isa=True, qat=True),
    AcceleratorSupport("MD5", isa=True, qat=False),
    AcceleratorSupport("DES-EDE3", isa=True, qat=False),
    AcceleratorSupport("Whirlpool", isa=True, qat=False),
    AcceleratorSupport("RMD160", isa=True, qat=False),
    AcceleratorSupport("DES-CBC", isa=True, qat=False),
    AcceleratorSupport("Camellia", isa=True, qat=False),
    AcceleratorSupport("RC2-CBC", isa=True, qat=False),
    AcceleratorSupport("RC4", isa=True, qat=False),
    AcceleratorSupport("Blowfish", isa=True, qat=False),
    AcceleratorSupport("SEED-CBC", isa=True, qat=False),
    AcceleratorSupport("CAST-CBC", isa=True, qat=False),
    AcceleratorSupport("EdDSA", isa=True, qat=False),
    AcceleratorSupport("MD4", isa=True, qat=False),
)


def support_matrix() -> Dict[str, AcceleratorSupport]:
    return {entry.function: entry for entry in TABLE1}


def qat_functions() -> List[str]:
    """Functions accelerated by the QAT adapter."""
    return [entry.function for entry in TABLE1 if entry.qat]


def isa_only_functions() -> List[str]:
    """Functions accelerated only through ISA extensions."""
    return [entry.function for entry in TABLE1 if entry.isa and not entry.qat]


#: mapping from our registry function names to Table I rows, where the
#: packet-level function is backed by one of the listed primitives
REGISTRY_ACCELERATION: Dict[str, Tuple[str, ...]] = {
    "crypto": ("RSA", "DSA", "EC-DH"),
    "compress": ("Deflate",),
}


def host_accelerates(registry_name: str) -> bool:
    """Does the host have hardware acceleration for this registry NF?"""
    matrix = support_matrix()
    primitives = REGISTRY_ACCELERATION.get(registry_name, ())
    return any(matrix[p].host_accelerated for p in primitives)
