"""DPDK API shims.

The load-balancing policy (Algorithm 1) is written against three DPDK
facilities: ``rte_eth_rx_burst`` (whose return values accumulate into the
SNIC throughput estimate), ``rte_eth_rx_queue_count`` (Rx-ring occupancy)
and the power-management API (core sleep/wake). These shims expose the
simulator's engines through functions named after their DPDK
counterparts, so :mod:`repro.core.lbp` reads like the pseudocode in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.platform import ProcessingEngine

#: default rte_eth_rx_burst batch size
BURST_SIZE = 32
#: default Rx descriptor-ring depth per queue
RX_RING_DEPTH = 1024


def rte_eth_rx_queue_count(engine: ProcessingEngine, queue_id: int) -> int:
    """Backlog (packets) of one Rx queue of ``engine``.

    Includes work held in a deepened accelerator pipeline during overload
    — the backpressure the hardware descriptor ring exposes.
    """
    if not 0 <= queue_id < engine.active_cores:
        raise ValueError(
            f"queue_id {queue_id} out of range [0, {engine.active_cores})"
        )
    return engine._rings[queue_id].occupancy_packets + engine._in_pipeline[queue_id]


def rx_queue_max_occupancy(engine: ProcessingEngine) -> int:
    """max over queues of rte_eth_rx_queue_count — Algorithm 1 lines 3–6."""
    occupancy = 0
    for queue_id in range(engine.active_cores):
        count = rte_eth_rx_queue_count(engine, queue_id)
        if count > occupancy:
            occupancy = count
    return occupancy


@dataclass
class ThroughputEstimator:
    """Accumulates delivered bits like summed rx_burst return values.

    LBP calls :meth:`sample` once per policy period and receives the
    engine's throughput (Gbps) over the period just ended.
    """

    engine: ProcessingEngine
    _last_bits: int = 0
    _last_time: float = 0.0

    def sample(self, now: float) -> float:
        bits = self.engine.delivered_bits
        elapsed = now - self._last_time
        delta = bits - self._last_bits
        self._last_bits = bits
        self._last_time = now
        if elapsed <= 0:
            return 0.0
        return delta / elapsed / 1e9


def enable_power_management(
    engine: ProcessingEngine,
    wake_latency_s: float = 30e-6,
    sleep_after_idle_s: float = 200e-6,
) -> None:
    """Turn on the DPDK power-management API behaviour for ``engine``:
    cores sleep when their queues stay empty and pay a wake-up penalty on
    the next arrival (§V-B)."""
    engine.sleep_enabled = True
    engine.wake_latency_s = wake_latency_s
    engine.sleep_after_idle_s = sleep_after_idle_s
    if engine.busy_cores == 0 and engine.total_queued_packets() == 0:
        engine.sleeping = True
        if engine.on_power_change is not None:
            engine.on_power_change(engine)
