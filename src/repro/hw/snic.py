"""SNIC platform descriptors and engine factories.

Encodes the BlueField-2 architecture of §II-A (8×A72 cores, REM / crypto
/ compression accelerators, eSwitch, on-board DRAM) and the BlueField-3
successor used in Fig. 10, and builds calibrated
:class:`~repro.hw.platform.ProcessingEngine` instances for a given
function on the SNIC side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.hw.pcie import snic_delivery_latency_s
from repro.hw.platform import ProcessingEngine
from repro.hw.profiles import EngineProfile, bf3_profile, get_profile
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class SnicDescriptor:
    """Static description of an SNIC part."""

    model: str
    cpu_cores: int
    cpu_ghz: float
    line_rate_gbps: float
    dram_gb: int
    dram_type: str
    accelerators: Tuple[str, ...]
    idle_power_w: float
    max_power_w: float


BLUEFIELD2 = SnicDescriptor(
    model="BlueField-2",
    cpu_cores=8,
    cpu_ghz=2.0,
    line_rate_gbps=100.0,
    dram_gb=16,
    dram_type="DDR4-3200",
    accelerators=("rem", "crypto", "compress"),
    idle_power_w=29.0,
    max_power_w=37.0,
)

BLUEFIELD3 = SnicDescriptor(
    model="BlueField-3",
    cpu_cores=16,
    cpu_ghz=2.0,
    line_rate_gbps=200.0,
    dram_gb=32,
    dram_type="DDR5",
    accelerators=("rem", "crypto", "compress"),
    idle_power_w=35.0,
    max_power_w=50.0,
)


def snic_engine_profile(function: str, generation: str = "bf2") -> EngineProfile:
    """The SNIC-side profile for ``function`` on the given generation."""
    if generation == "bf2":
        return get_profile(function).snic
    if generation == "bf3":
        return bf3_profile(function)
    raise ValueError(f"unknown SNIC generation {generation!r}")


def make_snic_engine(
    sim: Simulator,
    function: str,
    generation: str = "bf2",
    name: Optional[str] = None,
    name_prefix: str = "",
    **engine_kwargs,
) -> ProcessingEngine:
    """A ready-to-use SNIC processing engine for ``function``.

    Hardware-accelerated functions run on the accelerator block profile;
    software functions run on the Arm cores. Both sit behind the on-chip
    PCIe fabric latency.  ``name_prefix`` namespaces the engine per server
    in a rack (distinct names mean distinct jitter streams and distinct
    power-model components).
    """
    profile = snic_engine_profile(function, generation)
    engine_kwargs.setdefault("delivery_latency_s", snic_delivery_latency_s())
    return ProcessingEngine(
        sim, profile, name=name or (name_prefix + profile.name), **engine_kwargs
    )


def uses_accelerator(function: str) -> bool:
    """Does BF-2 process this function on an accelerator block?"""
    return get_profile(function).snic.accelerated
