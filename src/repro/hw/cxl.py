"""CXL-SNIC emulation (§V-C).

No CXL-attached SNIC exists, so the paper emulates one with a dual-socket
NUMA server: socket 1 (frequency-capped to 800 MHz, 8 cores) plays the
SNIC, socket 0 plays the host, and the UPI interconnect stands in for
CXL.cache — which is architecturally descended from UPI.

We emulate the emulation: :func:`make_cxl_state_domain` returns a
coherent :class:`~repro.nf.state.SharedStateDomain` with UPI/CXL-class
line-transfer costs, and :func:`make_pcie_state_domain` the non-coherent
PCIe alternative whose per-access software cost is what makes stateful
functions impractical on a PCIe-SNIC. :class:`NumaEmulation` captures the
paper's socket configuration so experiments can report it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nf.state import CXL_COSTS, PCIE_COSTS, SharedStateDomain


@dataclass(frozen=True)
class NumaEmulation:
    """The paper's NUMA stand-in for a CXL-SNIC (Fig. 7)."""

    snic_node_cores: int = 8
    snic_node_freq_ghz: float = 0.8   # capped to match BF-2 Arm at 2 GHz
    host_node_cores: int = 8
    host_node_freq_ghz: float = 2.2
    #: SPEC-2017 mcf sanity check from §V-C: SNIC@2GHz 1391 s ≈ host@800MHz 1424 s
    calibration_note: str = "BF-2 A72 @2GHz ~ Xeon @800MHz (mcf: 1391s vs 1424s)"

    @property
    def frequency_ratio(self) -> float:
        return self.host_node_freq_ghz / self.snic_node_freq_ghz


def make_cxl_state_domain(block_count: int = 1024) -> SharedStateDomain:
    """Shared state over CXL.cache/UPI — hardware-coherent, cheap."""
    return SharedStateDomain(CXL_COSTS, block_count=block_count, home_agent="host")


def make_pcie_state_domain(block_count: int = 1024) -> SharedStateDomain:
    """Shared state over plain PCIe — software-mediated, expensive.

    The domain still *functions* (software can always shuttle state), but
    each remote access costs microseconds; experiments use this to show
    why HAL restricts stateful cooperation to CXL-SNICs.
    """
    return SharedStateDomain(PCIE_COSTS, block_count=block_count, home_agent="host")


def stateful_cooperation_viable(domain: SharedStateDomain) -> bool:
    """§V-C's criterion: cooperative stateful processing needs coherence."""
    return domain.costs.coherent
