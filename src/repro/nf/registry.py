"""Function registry: Table IV names → constructors.

Experiments look functions up by the names used throughout the paper
(``kvs``, ``count``, ``ema``, ``nat``, ``bm25``, ``knn``, ``bayes``,
``rem``, ``crypto``, ``compress``) plus the four pipelined compositions
of §VII-B (``nat+rem`` etc.).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.nf.base import NetworkFunction
from repro.nf.bayes import BayesFunction
from repro.nf.bm25 import Bm25Function
from repro.nf.compress import CompressFunction
from repro.nf.count import CountFunction
from repro.nf.crypto import CryptoFunction
from repro.nf.ema import EmaFunction
from repro.nf.knn import KnnFunction
from repro.nf.kvs import KvsFunction
from repro.nf.nat import NatFunction
from repro.nf.pipeline import PIPELINE_NAMES, PipelineFunction
from repro.nf.rem import RemFunction

_BASE_FACTORIES: Dict[str, Callable[[], NetworkFunction]] = {
    "kvs": KvsFunction,
    "count": CountFunction,
    "ema": EmaFunction,
    "nat": NatFunction,
    "bm25": Bm25Function,
    "knn": KnnFunction,
    "bayes": BayesFunction,
    "rem": lambda: RemFunction(ruleset="lite", scale=0.1),
    "crypto": CryptoFunction,
    "compress": CompressFunction,
}

#: the ten Table IV functions, in the paper's order
FUNCTION_NAMES = tuple(_BASE_FACTORIES)
#: functions evaluated under the datacenter traces in Table V
TABLE5_SINGLE_FUNCTIONS = ("knn", "nat", "count", "ema", "rem", "crypto")


def available_functions() -> List[str]:
    """All registry names, base functions first then pipelines."""
    return list(FUNCTION_NAMES) + list(PIPELINE_NAMES)


def create_function(name: str) -> NetworkFunction:
    """Instantiate a function (or two-stage pipeline) by registry name."""
    if name in _BASE_FACTORIES:
        return _BASE_FACTORIES[name]()
    if "+" in name:
        first_name, _, second_name = name.partition("+")
        if first_name in _BASE_FACTORIES and second_name in _BASE_FACTORIES:
            return PipelineFunction(
                create_function(first_name), create_function(second_name)
            )
    raise KeyError(
        f"unknown network function {name!r}; known: {available_functions()}"
    )
