"""NAT — network address translation (Table IV, stateless in the paper's
classification: the translation table is read-mostly and per-flow
deterministic, so SNIC and host replicas stay consistent without sharing).

A real source-NAT data plane: an LRU translation table maps internal
(ip, port) pairs to external (ip, port) pairs, allocated on first use and
reused per flow. Both the 1K-entry and 10K-entry configurations from
Table IV are supported. Translation is deterministic given the allocation
order, and reverse lookups invert it — both properties are unit-tested.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError


@dataclass(frozen=True)
class NatRequest:
    """An inner packet five-tuple to be source-translated."""

    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    proto: int = 17  # UDP


@dataclass(frozen=True)
class NatResponse:
    """The translated five-tuple plus the binding that produced it."""

    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    proto: int
    binding_new: bool


class NatTable:
    """LRU source-NAT binding table with a bounded entry count."""

    def __init__(self, capacity: int, external_ip: int, port_base: int = 20000) -> None:
        if capacity <= 0:
            raise ValueError("NAT table capacity must be positive")
        self.capacity = capacity
        self.external_ip = external_ip
        self.port_base = port_base
        self._forward: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._reverse: dict = {}
        self._next_port = 0
        self._free_ports: list = []
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._forward)

    def _allocate_port(self) -> int:
        if self._free_ports:
            return self._free_ports.pop()
        port = self.port_base + self._next_port
        self._next_port += 1
        return port

    def translate(self, src_ip: int, src_port: int) -> Tuple[int, bool]:
        """Return (external_port, is_new_binding) for an internal endpoint."""
        key = (src_ip, src_port)
        port = self._forward.get(key)
        if port is not None:
            self._forward.move_to_end(key)
            return port, False
        if len(self._forward) >= self.capacity:
            old_key, old_port = self._forward.popitem(last=False)
            del self._reverse[old_port]
            self._free_ports.append(old_port)
            self.evictions += 1
        port = self._allocate_port()
        self._forward[key] = port
        self._reverse[port] = key
        return port, True

    def reverse(self, external_port: int) -> Optional[Tuple[int, int]]:
        """Invert a binding: external port → internal (ip, port)."""
        return self._reverse.get(external_port)

    def clear(self) -> None:
        self._forward.clear()
        self._reverse.clear()
        self._free_ports.clear()
        self._next_port = 0
        self.evictions = 0


class NatFunction(NetworkFunction):
    """Source NAT over an LRU table (Table IV: 1K & 10K entries)."""

    name = "nat"
    stateful = False

    #: Table IV configurations.
    CONFIGS = (1_000, 10_000)

    def __init__(self, entries: int = 10_000, seed: int = 7) -> None:
        super().__init__(seed)
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        # external identity the NAT masquerades as
        self.external_ip = 0x0A000064  # 10.0.0.100
        self.table = NatTable(entries, self.external_ip)
        # synthetic internal client population, ~2x table size so the LRU
        # actually churns in long runs
        self._client_count = entries * 2

    def process(self, request: NatRequest) -> NatResponse:
        if not isinstance(request, NatRequest):
            raise NetworkFunctionError(f"NAT expects NatRequest, got {type(request)!r}")
        self._count()
        port, is_new = self.table.translate(request.src_ip, request.src_port)
        return NatResponse(
            src_ip=self.external_ip,
            src_port=port,
            dst_ip=request.dst_ip,
            dst_port=request.dst_port,
            proto=request.proto,
            binding_new=is_new,
        )

    def reverse_lookup(self, external_port: int) -> Optional[Tuple[int, int]]:
        return self.table.reverse(external_port)

    def make_request(self, seq: int, flow: int) -> NatRequest:
        client = self._rng.randrange(self._client_count)
        return NatRequest(
            src_ip=0xC0A80000 + (client >> 8),  # 192.168.x.x
            src_port=1024 + (client & 0xFF),
            dst_ip=0x08080808,
            dst_port=53,
        )

    def reset(self) -> None:
        super().reset()
        self.table.clear()
