"""Two pipelined functions (§VII-B).

The paper evaluates four compositions where the first function consumes
the DPDK packet stream and feeds the second: NAT+REM, NAT+Crypto,
Count+REM, and Count+Crypto. :class:`PipelineFunction` composes any two
NFs; the request bundles one request per stage, the response collects
both stage responses, and capacity/latency profiles for the composition
are derived in :mod:`repro.hw.profiles` by serialising the stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError


@dataclass(frozen=True)
class PipelineRequest:
    stage_requests: Tuple[Any, Any]


@dataclass(frozen=True)
class PipelineResponse:
    stage_responses: Tuple[Any, Any]


class PipelineFunction(NetworkFunction):
    """Composition of two NFs executed back-to-back on each packet."""

    def __init__(self, first: NetworkFunction, second: NetworkFunction) -> None:
        super().__init__()
        if first is second:
            raise ValueError("pipeline stages must be distinct instances")
        self.first = first
        self.second = second
        self.name = f"{first.name}+{second.name}"
        self.stateful = first.stateful or second.stateful

    def process(self, request: PipelineRequest) -> PipelineResponse:
        if not isinstance(request, PipelineRequest):
            raise NetworkFunctionError(
                f"pipeline expects PipelineRequest, got {type(request)!r}"
            )
        self._count()
        first_response = self.first.process(request.stage_requests[0])
        second_response = self.second.process(request.stage_requests[1])
        return PipelineResponse(stage_responses=(first_response, second_response))

    def make_request(self, seq: int, flow: int) -> PipelineRequest:
        return PipelineRequest(
            stage_requests=(
                self.first.make_request(seq, flow),
                self.second.make_request(seq, flow),
            )
        )

    def reset(self) -> None:
        super().reset()
        self.first.reset()
        self.second.reset()


#: the four compositions evaluated in Table V
PIPELINE_NAMES = ("nat+rem", "nat+crypto", "count+rem", "count+crypto")
