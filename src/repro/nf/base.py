"""Network-function interface.

Table IV of the paper lists ten DPDK functions. Each is implemented here
as a real computation over request payloads (`process`), plus a request
synthesizer (`make_request`) the traffic generator uses to produce
realistic payloads. The simulator charges calibrated service times from
:mod:`repro.hw.profiles`; the functional results let tests and examples
verify genuine behaviour (NAT translations really translate, the KV store
really stores, the regex engine really matches).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Optional


class NetworkFunctionError(RuntimeError):
    """Raised when an NF receives a request it cannot process."""


class NetworkFunction(ABC):
    """One of the paper's Table IV functions.

    Attributes
    ----------
    name:
        Registry key (e.g. ``"nat"``).
    stateful:
        Whether processing mutates shared state (Table IV's "(S)" mark).
        Stateful functions need cache-coherent shared memory to be
        load-balanced between the SNIC and the host (§V-C).
    """

    name: str = "abstract"
    stateful: bool = False

    def __init__(self, seed: int = 7) -> None:
        self._rng = random.Random(seed)
        self.requests_processed = 0

    @abstractmethod
    def process(self, request: Any) -> Any:
        """Run the function on one request and return its response."""

    @abstractmethod
    def make_request(self, seq: int, flow: int) -> Any:
        """Synthesize a request payload for packet ``seq`` of ``flow``."""

    def reset(self) -> None:
        """Drop all mutable state (used between experiment runs)."""
        self.requests_processed = 0

    def describe(self) -> str:
        kind = "stateful" if self.stateful else "stateless"
        return f"{self.name} ({kind})"

    def _count(self) -> None:
        self.requests_processed += 1


class StatefulFunction(NetworkFunction):
    """Base for the stateful Table IV functions (KVS, Count, EMA).

    Stateful NFs route their mutations through an optional
    :class:`repro.nf.state.SharedStateDomain` so that cooperative
    SNIC+host processing can account for coherence traffic. When no
    domain is attached the state is local (single-processor operation).
    """

    stateful = True

    def __init__(self, seed: int = 7) -> None:
        super().__init__(seed)
        self._domain: Optional[Any] = None
        self._agent: Optional[str] = None

    def attach_state_domain(self, domain: Any, agent: str) -> None:
        """Bind this instance to a shared-state domain as ``agent``."""
        self._domain = domain
        self._agent = agent

    def state_access(self, key: Any, write: bool) -> float:
        """Record a state access; returns the coherence cost in seconds."""
        if self._domain is None:
            return 0.0
        return self._domain.access(self._agent, key, write)
