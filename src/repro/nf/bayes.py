"""Bayes — naive Bayes classification (Table IV, stateless).

A Gaussian naive Bayes classifier trained once at construction on
synthetic per-class feature distributions, then applied per request in
log space. Table IV configures 128 and 256 features; those are the
dimensionalities accepted here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError
from repro.nf.corpus import make_vectors


@dataclass(frozen=True)
class BayesRequest:
    features: Tuple[float, ...]


@dataclass(frozen=True)
class BayesResponse:
    label: int
    log_posteriors: Tuple[float, ...]


class BayesFunction(NetworkFunction):
    """Gaussian naive Bayes with Table IV feature counts 128 and 256."""

    name = "bayes"
    stateful = False

    CONFIGS = (128, 256)

    def __init__(
        self,
        n_features: int = 128,
        n_classes: int = 4,
        train_per_class: int = 32,
        seed: int = 7,
    ) -> None:
        super().__init__(seed)
        if n_features <= 0 or n_classes <= 1 or train_per_class <= 1:
            raise ValueError("invalid Bayes dimensions")
        self.n_features = n_features
        self.n_classes = n_classes
        # synth training data: class c centred at its own mean vector
        self._class_means: List[Tuple[float, ...]] = make_vectors(
            n_classes, n_features, seed=seed, spread=2.0
        )
        self.means: List[List[float]] = []
        self.variances: List[List[float]] = []
        self.log_priors: List[float] = []
        for label, centre in enumerate(self._class_means):
            samples = make_vectors(
                train_per_class, n_features, seed=seed + 50 + label, spread=1.0
            )
            shifted = [
                [s + c for s, c in zip(sample, centre)] for sample in samples
            ]
            mean = [sum(col) / train_per_class for col in zip(*shifted)]
            var = [
                max(
                    1e-6,
                    sum((x - m) ** 2 for x in col) / (train_per_class - 1),
                )
                for col, m in zip(zip(*shifted), mean)
            ]
            self.means.append(mean)
            self.variances.append(var)
            self.log_priors.append(math.log(1.0 / n_classes))

    def _log_likelihood(self, features: Tuple[float, ...], label: int) -> float:
        total = self.log_priors[label]
        means = self.means[label]
        variances = self.variances[label]
        for x, mean, var in zip(features, means, variances):
            total += -0.5 * (math.log(2.0 * math.pi * var) + (x - mean) ** 2 / var)
        return total

    def process(self, request: BayesRequest) -> BayesResponse:
        if not isinstance(request, BayesRequest):
            raise NetworkFunctionError(
                f"Bayes expects BayesRequest, got {type(request)!r}"
            )
        if len(request.features) != self.n_features:
            raise NetworkFunctionError(
                f"expected {self.n_features} features, got {len(request.features)}"
            )
        self._count()
        posteriors = tuple(
            self._log_likelihood(request.features, label)
            for label in range(self.n_classes)
        )
        label = max(range(self.n_classes), key=lambda c: (posteriors[c], -c))
        return BayesResponse(label=label, log_posteriors=posteriors)

    def make_request(self, seq: int, flow: int) -> BayesRequest:
        label = self._rng.randrange(self.n_classes)
        centre = self._class_means[label]
        features = tuple(c + self._rng.gauss(0.0, 1.0) for c in centre)
        return BayesRequest(features=features)
