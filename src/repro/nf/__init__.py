"""The ten Table IV network functions, pipelines, and shared state."""

from repro.nf.base import NetworkFunction, NetworkFunctionError, StatefulFunction
from repro.nf.bayes import BayesFunction, BayesRequest, BayesResponse
from repro.nf.bm25 import Bm25Function, Bm25Index, Bm25Request, Bm25Response
from repro.nf.compress import (
    CompressFunction,
    CompressRequest,
    CompressResponse,
    CompressionError,
    deflate,
    inflate,
)
from repro.nf.count import CountFunction, CountRequest, CountResponse
from repro.nf.crypto import CryptoFunction, CryptoRequest, CryptoResponse
from repro.nf.ema import EmaFunction, EmaRequest, EmaResponse
from repro.nf.knn import KnnFunction, KnnRequest, KnnResponse
from repro.nf.kvs import KvRequest, KvResponse, KvsFunction
from repro.nf.nat import NatFunction, NatRequest, NatResponse, NatTable
from repro.nf.pipeline import (
    PIPELINE_NAMES,
    PipelineFunction,
    PipelineRequest,
    PipelineResponse,
)
from repro.nf.registry import (
    FUNCTION_NAMES,
    TABLE5_SINGLE_FUNCTIONS,
    available_functions,
    create_function,
)
from repro.nf.rem import (
    AhoCorasick,
    RegexNfa,
    RegexSyntaxError,
    RemFunction,
    RemRequest,
    RemResponse,
    Ruleset,
    make_lite_ruleset,
    make_tea_ruleset,
)
from repro.nf.state import (
    CXL_COSTS,
    PCIE_COSTS,
    CoherenceCosts,
    CoherenceStats,
    SharedStateDomain,
)

__all__ = [
    "AhoCorasick",
    "BayesFunction",
    "BayesRequest",
    "BayesResponse",
    "Bm25Function",
    "Bm25Index",
    "Bm25Request",
    "Bm25Response",
    "CXL_COSTS",
    "CoherenceCosts",
    "CoherenceStats",
    "CompressFunction",
    "CompressRequest",
    "CompressResponse",
    "CompressionError",
    "CountFunction",
    "CountRequest",
    "CountResponse",
    "CryptoFunction",
    "CryptoRequest",
    "CryptoResponse",
    "EmaFunction",
    "EmaRequest",
    "EmaResponse",
    "FUNCTION_NAMES",
    "KnnFunction",
    "KnnRequest",
    "KnnResponse",
    "KvRequest",
    "KvResponse",
    "KvsFunction",
    "NatFunction",
    "NatRequest",
    "NatResponse",
    "NatTable",
    "NetworkFunction",
    "NetworkFunctionError",
    "PCIE_COSTS",
    "PIPELINE_NAMES",
    "PipelineFunction",
    "PipelineRequest",
    "PipelineResponse",
    "RegexNfa",
    "RegexSyntaxError",
    "RemFunction",
    "RemRequest",
    "RemResponse",
    "Ruleset",
    "SharedStateDomain",
    "StatefulFunction",
    "TABLE5_SINGLE_FUNCTIONS",
    "available_functions",
    "create_function",
    "deflate",
    "inflate",
    "make_lite_ruleset",
    "make_tea_ruleset",
]
