"""KVS — key-value store with read / write / insert (Table IV, stateful).

A SILT-style in-memory store reduced to its service interface: GET,
PUT (update an existing key), and INSERT (create a new key). The Table IV
configuration exercises all three operation types; the synthetic request
mix defaults to the read-heavy split typical of datacenter KV traffic.

Being stateful, every operation routes through the shared-state domain
when one is attached (§V-C), so cooperative SNIC+host runs account for
coherence stalls on the touched key's block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.nf.base import NetworkFunctionError, StatefulFunction
from repro.nf.corpus import make_keys

GET, PUT, INSERT, DELETE = "get", "put", "insert", "delete"


@dataclass(frozen=True)
class KvRequest:
    op: str
    key: str
    value: Optional[bytes] = None


@dataclass(frozen=True)
class KvResponse:
    ok: bool
    value: Optional[bytes] = None


class KvsFunction(StatefulFunction):
    """In-memory KV store with a bounded synthetic key space."""

    name = "kvs"

    def __init__(
        self,
        key_space: int = 4096,
        value_bytes: int = 128,
        read_fraction: float = 0.90,
        insert_fraction: float = 0.02,
        seed: int = 7,
    ) -> None:
        super().__init__(seed)
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= insert_fraction <= 1.0 - read_fraction:
            raise ValueError("insert_fraction must fit in the non-read share")
        self.key_space = key_space
        self.value_bytes = value_bytes
        self.read_fraction = read_fraction
        self.insert_fraction = insert_fraction
        self._keys = make_keys(key_space, seed=seed)
        self._store: Dict[str, bytes] = {}
        self._inserted = 0
        # preload half the key space so reads hit from the start
        for key in self._keys[: key_space // 2]:
            self._store[key] = self._make_value(key)
            self._inserted += 1
        self.hits = 0
        self.misses = 0

    def _make_value(self, key: str) -> bytes:
        return (key * ((self.value_bytes // len(key)) + 1))[: self.value_bytes].encode()

    def process(self, request: KvRequest) -> KvResponse:
        if not isinstance(request, KvRequest):
            raise NetworkFunctionError(f"KVS expects KvRequest, got {type(request)!r}")
        self._count()
        if request.op == GET:
            self.state_access(request.key, write=False)
            value = self._store.get(request.key)
            if value is None:
                self.misses += 1
                return KvResponse(ok=False)
            self.hits += 1
            return KvResponse(ok=True, value=value)
        if request.op == PUT:
            self.state_access(request.key, write=True)
            if request.key not in self._store:
                self.misses += 1
                return KvResponse(ok=False)
            self._store[request.key] = request.value or b""
            self.hits += 1
            return KvResponse(ok=True)
        if request.op == INSERT:
            self.state_access(request.key, write=True)
            created = request.key not in self._store
            self._store[request.key] = request.value or b""
            if created:
                self._inserted += 1
            return KvResponse(ok=created)
        if request.op == DELETE:
            self.state_access(request.key, write=True)
            existed = self._store.pop(request.key, None) is not None
            return KvResponse(ok=existed)
        raise NetworkFunctionError(f"unknown KVS op {request.op!r}")

    def make_request(self, seq: int, flow: int) -> KvRequest:
        roll = self._rng.random()
        if roll < self.read_fraction:
            key = self._keys[self._rng.randrange(max(1, self._inserted))]
            return KvRequest(GET, key)
        if roll < self.read_fraction + self.insert_fraction:
            key = self._keys[self._rng.randrange(self.key_space)]
            return KvRequest(INSERT, key, self._make_value(key))
        key = self._keys[self._rng.randrange(max(1, self._inserted))]
        return KvRequest(PUT, key, self._make_value(key))

    @property
    def size(self) -> int:
        return len(self._store)

    def get(self, key: str) -> Optional[bytes]:
        return self._store.get(key)

    def reset(self) -> None:
        super().reset()
        self._store.clear()
        self._inserted = 0
        for key in self._keys[: self.key_space // 2]:
            self._store[key] = self._make_value(key)
            self._inserted += 1
        self.hits = 0
        self.misses = 0
