"""Deterministic synthetic corpora for payload generation.

The paper's artifact uses the Silesia-mozilla file for compression, the
teakettle/snort rulesets for regex matching, and DPDK-generated payloads
elsewhere. None of those datasets ships here, so this module synthesizes
deterministic stand-ins with controllable statistics:

* ``make_text`` — Zipf-distributed word streams (search/REM inputs);
* ``make_bytes`` — byte blobs with tunable entropy (compression inputs:
  low-entropy blobs compress well like Silesia text, high-entropy blobs
  approach incompressibility);
* ``make_vocabulary`` — stable word lists for BM25/Bayes features;
* ``make_vectors`` — feature vectors for KNN.

Everything is seeded, so every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import string
from typing import List, Sequence, Tuple

_CONSONANTS = "bcdfghjklmnpqrstvwxz"
_VOWELS = "aeiouy"


def make_word(rng: random.Random, min_len: int = 3, max_len: int = 9) -> str:
    """A pronounceable pseudo-word (alternating consonant/vowel)."""
    length = rng.randint(min_len, max_len)
    letters = []
    for i in range(length):
        pool = _CONSONANTS if i % 2 == 0 else _VOWELS
        letters.append(rng.choice(pool))
    return "".join(letters)


def make_vocabulary(size: int, seed: int = 11) -> List[str]:
    """``size`` distinct pseudo-words, deterministic in ``seed``."""
    if size <= 0:
        raise ValueError("vocabulary size must be positive")
    rng = random.Random(seed)
    vocab: List[str] = []
    seen = set()
    while len(vocab) < size:
        word = make_word(rng)
        if word not in seen:
            seen.add(word)
            vocab.append(word)
    return vocab


def zipf_weights(n: int, s: float = 1.1) -> List[float]:
    """Zipf rank weights 1/k^s for k = 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    return [1.0 / (k**s) for k in range(1, n + 1)]


def make_text(
    vocabulary: Sequence[str],
    n_words: int,
    seed: int = 13,
    zipf_s: float = 1.1,
) -> str:
    """A Zipf-distributed word stream over ``vocabulary``."""
    if not vocabulary:
        raise ValueError("vocabulary must not be empty")
    rng = random.Random(seed)
    weights = zipf_weights(len(vocabulary), zipf_s)
    words = rng.choices(list(vocabulary), weights=weights, k=n_words)
    return " ".join(words)


def make_documents(
    vocabulary: Sequence[str],
    n_docs: int,
    words_per_doc: int,
    seed: int = 17,
) -> List[List[str]]:
    """``n_docs`` token lists, each a Zipf draw over the vocabulary."""
    rng = random.Random(seed)
    weights = zipf_weights(len(vocabulary))
    return [
        rng.choices(list(vocabulary), weights=weights, k=words_per_doc)
        for _ in range(n_docs)
    ]


def make_bytes(n: int, entropy: float = 0.3, seed: int = 19) -> bytes:
    """``n`` bytes whose compressibility tracks ``entropy`` ∈ [0, 1].

    entropy 0 → a single repeated phrase (maximally compressible);
    entropy 1 → uniform random bytes (incompressible). Intermediate values
    mix phrase repetition with random bytes, approximating natural text
    like the Silesia corpus at entropy ≈ 0.3–0.5.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= entropy <= 1.0:
        raise ValueError("entropy must be in [0, 1]")
    rng = random.Random(seed)
    phrase = (
        "the quick brown fox jumps over the lazy dog while the "
        "datacenter hums along at line rate "
    ).encode()
    out = bytearray()
    while len(out) < n:
        if rng.random() < entropy:
            out.append(rng.randrange(256))
        else:
            start = rng.randrange(len(phrase) // 2)
            take = min(rng.randint(8, 32), n - len(out))
            chunk = (phrase[start:] + phrase)[:take]
            out.extend(chunk)
    return bytes(out[:n])


def make_vectors(
    n: int, dims: int, seed: int = 23, spread: float = 1.0
) -> List[Tuple[float, ...]]:
    """``n`` Gaussian feature vectors of dimension ``dims``."""
    if n <= 0 or dims <= 0:
        raise ValueError("n and dims must be positive")
    rng = random.Random(seed)
    return [
        tuple(rng.gauss(0.0, spread) for _ in range(dims)) for _ in range(n)
    ]


def make_keys(n: int, seed: int = 29, length: int = 12) -> List[str]:
    """``n`` distinct alphanumeric keys (KVS/Count/EMA key space)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    alphabet = string.ascii_lowercase + string.digits
    keys = set()
    while len(keys) < n:
        keys.add("".join(rng.choices(alphabet, k=length)))
    return sorted(keys)
