"""Compression — a DEFLATE-style LZ77 + canonical-Huffman codec
(Table IV; driven on the BF-2 accelerator and QATzip in the paper).

This is a genuine, self-contained implementation of the Deflate recipe:

* an **LZ77** matcher with hash-chained 3-byte anchors, a sliding window,
  and greedy longest-match selection, emitting literal/match tokens;
* **canonical Huffman** coding of the literal/length and distance
  alphabets using DEFLATE's length/distance bucketing with extra bits;
* a byte-oriented container (code lengths as nibbles, then the MSB-first
  bitstream) plus the matching decoder.

Round-trip correctness is property-tested with hypothesis; compression
ratio on low-entropy input is asserted in unit tests. The paper's
Silesia-mozilla corpus is replaced by :func:`repro.nf.corpus.make_bytes`
at matching entropy (see DESIGN.md substitution table).

The paper excludes compression from the cooperative (Table V)
experiments because the accelerator processes whole files and cannot
split work with the host; we mirror that with ``cooperative = False``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.nf.base import NetworkFunction, NetworkFunctionError
from repro.nf.corpus import make_bytes

# ---------------------------------------------------------------------------
# DEFLATE alphabets
# ---------------------------------------------------------------------------

MIN_MATCH = 3
MAX_MATCH = 258
WINDOW_SIZE = 4096

_LENGTH_BASES = (
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59,
    67, 83, 99, 115, 131, 163, 195, 227, 258,
)
_LENGTH_EXTRA = (
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
    4, 4, 4, 4, 5, 5, 5, 5, 0,
)
_DIST_BASES = (
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513,
    769, 1025, 1537, 2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
)
_DIST_EXTRA = (
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8,
    9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
)

EOB = 256  # end-of-block symbol
LITLEN_SYMBOLS = 257 + len(_LENGTH_BASES)
DIST_SYMBOLS = len(_DIST_BASES)
MAX_CODE_LENGTH = 15


class CompressionError(RuntimeError):
    """Raised on malformed compressed streams."""


def length_to_symbol(length: int) -> Tuple[int, int, int]:
    """Map a match length to (symbol, extra_bits, extra_value)."""
    if not MIN_MATCH <= length <= MAX_MATCH:
        raise ValueError(f"match length out of range: {length}")
    for i in range(len(_LENGTH_BASES) - 1, -1, -1):
        if length >= _LENGTH_BASES[i]:
            return 257 + i, _LENGTH_EXTRA[i], length - _LENGTH_BASES[i]
    raise AssertionError("unreachable")


def distance_to_symbol(distance: int) -> Tuple[int, int, int]:
    """Map a match distance to (symbol, extra_bits, extra_value)."""
    if not 1 <= distance <= _DIST_BASES[-1]:
        raise ValueError(f"distance out of range: {distance}")
    for i in range(len(_DIST_BASES) - 1, -1, -1):
        if distance >= _DIST_BASES[i]:
            return i, _DIST_EXTRA[i], distance - _DIST_BASES[i]
    raise AssertionError("unreachable")


# ---------------------------------------------------------------------------
# bit I/O (MSB-first)
# ---------------------------------------------------------------------------

class BitWriter:
    def __init__(self) -> None:
        self._bytes = bytearray()
        self._bit_buffer = 0
        self._bit_count = 0

    def write_bits(self, value: int, nbits: int) -> None:
        if nbits < 0 or (nbits == 0 and value):
            raise ValueError("invalid bit write")
        if value >> nbits:
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        for shift in range(nbits - 1, -1, -1):
            self._bit_buffer = (self._bit_buffer << 1) | ((value >> shift) & 1)
            self._bit_count += 1
            if self._bit_count == 8:
                self._bytes.append(self._bit_buffer)
                self._bit_buffer = 0
                self._bit_count = 0

    def getvalue(self) -> bytes:
        out = bytearray(self._bytes)
        if self._bit_count:
            out.append(self._bit_buffer << (8 - self._bit_count))
        return bytes(out)


class BitReader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # bit position

    def read_bits(self, nbits: int) -> int:
        value = 0
        for _ in range(nbits):
            byte_index, bit_index = divmod(self._pos, 8)
            if byte_index >= len(self._data):
                raise CompressionError("unexpected end of compressed stream")
            bit = (self._data[byte_index] >> (7 - bit_index)) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value


# ---------------------------------------------------------------------------
# canonical Huffman
# ---------------------------------------------------------------------------

def huffman_code_lengths(frequencies: Sequence[int], max_length: int = MAX_CODE_LENGTH) -> List[int]:
    """Code lengths for each symbol (0 for unused), limited to max_length.

    Builds a Huffman tree over the non-zero-frequency symbols; if the
    deepest code exceeds ``max_length``, frequencies are repeatedly
    flattened (halved, floor 1) and the tree rebuilt — a standard
    length-limiting heuristic that always terminates at uniform codes.
    """
    freqs = list(frequencies)
    used = [i for i, f in enumerate(freqs) if f > 0]
    if not used:
        return [0] * len(freqs)
    if len(used) == 1:
        lengths = [0] * len(freqs)
        lengths[used[0]] = 1
        return lengths
    while True:
        counter = itertools.count()
        heap = [(freqs[i], next(counter), i, None, None) for i in used]
        heapq.heapify(heap)
        while len(heap) > 1:
            a = heapq.heappop(heap)
            b = heapq.heappop(heap)
            heapq.heappush(heap, (a[0] + b[0], next(counter), -1, a, b))
        lengths = [0] * len(freqs)
        deepest = 0

        stack = [(heap[0], 0)]
        while stack:
            (freq, _tie, symbol, left, right), depth = stack.pop()
            if symbol >= 0:
                lengths[symbol] = max(1, depth)
                deepest = max(deepest, depth)
            else:
                stack.append((left, depth + 1))
                stack.append((right, depth + 1))
        if deepest <= max_length:
            return lengths
        freqs = [max(1, f // 2) if f > 0 else 0 for f in freqs]


def canonical_codes(lengths: Sequence[int]) -> Dict[int, Tuple[int, int]]:
    """Canonical (code, length) per symbol from code lengths."""
    pairs = sorted(
        (length, symbol) for symbol, length in enumerate(lengths) if length > 0
    )
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_length = 0
    for length, symbol in pairs:
        code <<= length - prev_length
        codes[symbol] = (code, length)
        code += 1
        prev_length = length
    return codes


def decode_table(lengths: Sequence[int]) -> Dict[Tuple[int, int], int]:
    """(length, code) → symbol map for the decoder."""
    return {
        (length, code): symbol
        for symbol, (code, length) in canonical_codes(lengths).items()
    }


# ---------------------------------------------------------------------------
# LZ77
# ---------------------------------------------------------------------------

Token = Union[int, Tuple[int, int]]  # literal byte, or (length, distance)


def lz77_tokenize(
    data: bytes,
    window: int = WINDOW_SIZE,
    max_chain: int = 64,
) -> List[Token]:
    """Greedy LZ77 with hash-chained 3-byte anchors."""
    tokens: List[Token] = []
    n = len(data)
    head: Dict[int, int] = {}
    prev: Dict[int, int] = {}
    pos = 0

    def anchor(i: int) -> int:
        return data[i] | (data[i + 1] << 8) | (data[i + 2] << 16)

    while pos < n:
        best_length = 0
        best_distance = 0
        if pos + MIN_MATCH <= n:
            key = anchor(pos)
            candidate = head.get(key, -1)
            chain = 0
            while candidate >= 0 and pos - candidate <= window and chain < max_chain:
                length = 0
                limit = min(MAX_MATCH, n - pos)
                while length < limit and data[candidate + length] == data[pos + length]:
                    length += 1
                if length > best_length:
                    best_length = length
                    best_distance = pos - candidate
                    if length >= limit:
                        break
                candidate = prev.get(candidate, -1)
                chain += 1
        if best_length >= MIN_MATCH:
            tokens.append((best_length, best_distance))
            end = pos + best_length
            while pos < end and pos + MIN_MATCH <= n:
                key = anchor(pos)
                prev[pos] = head.get(key, -1)
                head[key] = pos
                pos += 1
            pos = end
        else:
            tokens.append(data[pos])
            if pos + MIN_MATCH <= n:
                key = anchor(pos)
                prev[pos] = head.get(key, -1)
                head[key] = pos
            pos += 1
    return tokens


def lz77_detokenize(tokens: Sequence[Token]) -> bytes:
    out = bytearray()
    for token in tokens:
        if isinstance(token, int):
            out.append(token)
        else:
            length, distance = token
            if distance <= 0 or distance > len(out):
                raise CompressionError(f"invalid back-reference distance {distance}")
            start = len(out) - distance
            for i in range(length):
                out.append(out[start + i])
    return bytes(out)


# ---------------------------------------------------------------------------
# the codec
# ---------------------------------------------------------------------------

#: leading container byte: Huffman-coded block vs raw stored block
_BLOCK_HUFFMAN = 0x01
_BLOCK_STORED = 0x00


def deflate(data: bytes) -> bytes:
    """Compress ``data``; always decodable by :func:`inflate`.

    Like real DEFLATE, incompressible input falls back to a *stored*
    block so the output never expands beyond a one-byte header plus the
    4-byte length."""
    compressed = _deflate_huffman(data)
    if len(compressed) >= len(data) + 5:
        stored = bytearray([_BLOCK_STORED])
        stored.extend(len(data).to_bytes(4, "big"))
        stored.extend(data)
        return bytes(stored)
    return compressed


def _deflate_huffman(data: bytes) -> bytes:
    tokens = lz77_tokenize(data)

    litlen_freq = [0] * LITLEN_SYMBOLS
    dist_freq = [0] * DIST_SYMBOLS
    litlen_freq[EOB] = 1
    for token in tokens:
        if isinstance(token, int):
            litlen_freq[token] += 1
        else:
            length, distance = token
            litlen_freq[length_to_symbol(length)[0]] += 1
            dist_freq[distance_to_symbol(distance)[0]] += 1

    litlen_lengths = huffman_code_lengths(litlen_freq)
    dist_lengths = huffman_code_lengths(dist_freq)
    litlen_codes = canonical_codes(litlen_lengths)
    dist_codes = canonical_codes(dist_lengths)

    writer = BitWriter()
    # header: block type, original size (32 bits), then both length tables
    writer.write_bits(_BLOCK_HUFFMAN, 8)
    writer.write_bits(len(data), 32)
    for length in litlen_lengths:
        writer.write_bits(length, 4)
    for length in dist_lengths:
        writer.write_bits(length, 4)
    for token in tokens:
        if isinstance(token, int):
            code, nbits = litlen_codes[token]
            writer.write_bits(code, nbits)
        else:
            length, distance = token
            symbol, extra_bits, extra = length_to_symbol(length)
            code, nbits = litlen_codes[symbol]
            writer.write_bits(code, nbits)
            if extra_bits:
                writer.write_bits(extra, extra_bits)
            dsymbol, dextra_bits, dextra = distance_to_symbol(distance)
            dcode, dnbits = dist_codes[dsymbol]
            writer.write_bits(dcode, dnbits)
            if dextra_bits:
                writer.write_bits(dextra, dextra_bits)
    code, nbits = litlen_codes[EOB]
    writer.write_bits(code, nbits)
    return writer.getvalue()


def _read_symbol(reader: BitReader, table: Dict[Tuple[int, int], int]) -> int:
    code = 0
    for length in range(1, MAX_CODE_LENGTH + 1):
        code = (code << 1) | reader.read_bits(1)
        symbol = table.get((length, code))
        if symbol is not None:
            return symbol
    raise CompressionError("invalid Huffman code in stream")


def inflate(blob: bytes) -> bytes:
    """Decompress a :func:`deflate` stream."""
    if not blob:
        raise CompressionError("empty compressed stream")
    if blob[0] == _BLOCK_STORED:
        if len(blob) < 5:
            raise CompressionError("truncated stored block header")
        size = int.from_bytes(blob[1:5], "big")
        payload = blob[5 : 5 + size]
        if len(payload) != size:
            raise CompressionError("truncated stored block payload")
        return payload
    if blob[0] != _BLOCK_HUFFMAN:
        raise CompressionError(f"unknown block type {blob[0]:#x}")
    reader = BitReader(blob)
    reader.read_bits(8)  # block type, already validated
    original_size = reader.read_bits(32)
    litlen_lengths = [reader.read_bits(4) for _ in range(LITLEN_SYMBOLS)]
    dist_lengths = [reader.read_bits(4) for _ in range(DIST_SYMBOLS)]
    litlen_table = decode_table(litlen_lengths)
    dist_table = decode_table(dist_lengths)

    tokens: List[Token] = []
    while True:
        symbol = _read_symbol(reader, litlen_table)
        if symbol == EOB:
            break
        if symbol < 256:
            tokens.append(symbol)
            continue
        index = symbol - 257
        if index >= len(_LENGTH_BASES):
            raise CompressionError(f"invalid length symbol {symbol}")
        length = _LENGTH_BASES[index] + reader.read_bits(_LENGTH_EXTRA[index])
        dsymbol = _read_symbol(reader, dist_table)
        distance = _DIST_BASES[dsymbol] + reader.read_bits(_DIST_EXTRA[dsymbol])
        tokens.append((length, distance))
    data = lz77_detokenize(tokens)
    if len(data) != original_size:
        raise CompressionError(
            f"size mismatch: header says {original_size}, got {len(data)}"
        )
    return data


# ---------------------------------------------------------------------------
# the network function
# ---------------------------------------------------------------------------

COMPRESS, ROUNDTRIP = "compress", "roundtrip"


@dataclass(frozen=True)
class CompressRequest:
    op: str
    data: bytes


@dataclass(frozen=True)
class CompressResponse:
    op: str
    output_bytes: int
    ratio: float
    ok: bool


class CompressFunction(NetworkFunction):
    """Deflate-style (de)compression over synthetic Silesia-like chunks."""

    name = "compress"
    stateful = False
    #: excluded from SNIC+host cooperative runs (§VI) — file-granular work
    cooperative = False

    def __init__(self, chunk_bytes: int = 1024, entropy: float = 0.35, seed: int = 7) -> None:
        super().__init__(seed)
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.chunk_bytes = chunk_bytes
        self.entropy = entropy
        self.total_in = 0
        self.total_out = 0

    def process(self, request: CompressRequest) -> CompressResponse:
        if not isinstance(request, CompressRequest):
            raise NetworkFunctionError(
                f"Compress expects CompressRequest, got {type(request)!r}"
            )
        self._count()
        blob = deflate(request.data)
        self.total_in += len(request.data)
        self.total_out += len(blob)
        ratio = len(blob) / len(request.data) if request.data else 1.0
        ok = True
        if request.op == ROUNDTRIP:
            ok = inflate(blob) == request.data
        elif request.op != COMPRESS:
            raise NetworkFunctionError(f"unknown compress op {request.op!r}")
        return CompressResponse(
            op=request.op, output_bytes=len(blob), ratio=ratio, ok=ok
        )

    @property
    def overall_ratio(self) -> float:
        return self.total_out / self.total_in if self.total_in else 1.0

    def make_request(self, seq: int, flow: int) -> CompressRequest:
        data = make_bytes(
            self.chunk_bytes, entropy=self.entropy, seed=self._rng.randrange(1 << 30)
        )
        return CompressRequest(op=COMPRESS, data=data)
