"""Count — frequency counting over batched items (Table IV, stateful).

The Metron-style NFV counting stage: each request carries a batch of 4 or
8 items (Table IV's batch-size configurations), and the function bumps a
per-item frequency counter. The counter table is the shared state that
SNIC+host cooperation must keep coherent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.nf.base import NetworkFunctionError, StatefulFunction
from repro.nf.corpus import make_keys


@dataclass(frozen=True)
class CountRequest:
    items: Tuple[str, ...]


@dataclass(frozen=True)
class CountResponse:
    counts: Tuple[int, ...]


class CountFunction(StatefulFunction):
    """Frequency counter with Table IV batch sizes 4 and 8."""

    name = "count"

    CONFIGS = (4, 8)

    def __init__(self, batch_size: int = 8, key_space: int = 2048, seed: int = 7) -> None:
        super().__init__(seed)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.batch_size = batch_size
        self.key_space = key_space
        self._keys = make_keys(key_space, seed=seed)
        self._counts: Dict[str, int] = {}

    def process(self, request: CountRequest) -> CountResponse:
        if not isinstance(request, CountRequest):
            raise NetworkFunctionError(
                f"Count expects CountRequest, got {type(request)!r}"
            )
        self._count()
        results: List[int] = []
        for item in request.items:
            self.state_access(item, write=True)
            new = self._counts.get(item, 0) + 1
            self._counts[item] = new
            results.append(new)
        return CountResponse(counts=tuple(results))

    def frequency(self, item: str) -> int:
        return self._counts.get(item, 0)

    def total(self) -> int:
        # lint: disable=DET04 integer counters: addition is exact, order cannot change the total
        return sum(self._counts.values())

    def make_request(self, seq: int, flow: int) -> CountRequest:
        items = tuple(
            self._keys[self._rng.randrange(self.key_space)]
            for _ in range(self.batch_size)
        )
        return CountRequest(items=items)

    def reset(self) -> None:
        super().reset()
        self._counts.clear()
