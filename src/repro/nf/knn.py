"""KNN — k-nearest-neighbour classification (Table IV, stateless).

Classic Cover & Hart nearest-neighbour voting over a fixed reference set.
Table IV configures reference-set sizes of 8 and 16 points per class;
queries are feature vectors, responses the majority label among the k
nearest references by Euclidean distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError
from repro.nf.corpus import make_vectors


@dataclass(frozen=True)
class KnnRequest:
    vector: Tuple[float, ...]
    k: int = 3


@dataclass(frozen=True)
class KnnResponse:
    label: int
    neighbour_ids: Tuple[int, ...]


def euclidean(a: Sequence[float], b: Sequence[float]) -> float:
    if len(a) != len(b):
        raise ValueError("vectors must have equal dimensionality")
    return math.sqrt(sum((x - y) ** 2 for x, y in zip(a, b)))


class KnnFunction(NetworkFunction):
    """KNN with Table IV reference-set sizes 8 and 16 per class."""

    name = "knn"
    stateful = False

    CONFIGS = (8, 16)

    def __init__(
        self,
        set_size: int = 16,
        n_classes: int = 4,
        dims: int = 16,
        seed: int = 7,
    ) -> None:
        super().__init__(seed)
        if set_size <= 0 or n_classes <= 1 or dims <= 0:
            raise ValueError("set_size/dims must be positive, n_classes > 1")
        self.set_size = set_size
        self.n_classes = n_classes
        self.dims = dims
        # class c's references are clustered around a per-class centroid
        self.references: List[Tuple[Tuple[float, ...], int]] = []
        centroids = make_vectors(n_classes, dims, seed=seed, spread=4.0)
        for label, centroid in enumerate(centroids):
            points = make_vectors(set_size, dims, seed=seed + 100 + label, spread=1.0)
            for point in points:
                shifted = tuple(p + c for p, c in zip(point, centroid))
                self.references.append((shifted, label))
        self._centroids = centroids

    def process(self, request: KnnRequest) -> KnnResponse:
        if not isinstance(request, KnnRequest):
            raise NetworkFunctionError(f"KNN expects KnnRequest, got {type(request)!r}")
        if request.k <= 0:
            raise NetworkFunctionError("k must be positive")
        self._count()
        ranked = sorted(
            range(len(self.references)),
            key=lambda i: euclidean(request.vector, self.references[i][0]),
        )
        nearest = ranked[: request.k]
        votes = [0] * self.n_classes
        for idx in nearest:
            votes[self.references[idx][1]] += 1
        label = max(range(self.n_classes), key=lambda c: (votes[c], -c))
        return KnnResponse(label=label, neighbour_ids=tuple(nearest))

    def make_request(self, seq: int, flow: int) -> KnnRequest:
        label = self._rng.randrange(self.n_classes)
        centroid = self._centroids[label]
        vector = tuple(c + self._rng.gauss(0.0, 1.2) for c in centroid)
        return KnnRequest(vector=vector)
