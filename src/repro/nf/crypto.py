"""Cryptography — RSA, Diffie–Hellman, and DSA (Table IV, stateless).

The BlueField-2 PKA accelerator and the host's QAT both execute public-key
primitives; the paper's cryptography function drives RSA, DH, and DSA.
This module implements all three from first principles on top of a
Miller–Rabin prime generator and Python big-integer modular arithmetic:

* **RSA**: textbook keygen (e = 65537, CRT decryption), encrypt/decrypt,
  sign/verify over SHA-256 digests;
* **DH**: classic exchange in a safe-prime group;
* **DSA**: FIPS-186-style parameter generation (q | p−1), per-message
  nonces, sign/verify.

Key sizes default to 512-bit moduli — small enough to generate and run
thousands of operations in tests, while exercising the identical code
paths as production sizes. (These are simulation workloads, not security
advice; textbook RSA is deliberately unpadded.)
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError

# ---------------------------------------------------------------------------
# number theory
# ---------------------------------------------------------------------------

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_probable_prime(n: int, rounds: int = 24, rng: Optional[random.Random] = None) -> bool:
    """Miller–Rabin probabilistic primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random(0xC0FFEE ^ n)
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """A random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse via extended Euclid; raises if gcd(a, m) != 1."""
    g, x = _egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} is not invertible modulo {m}")
    return x % m


def _egcd(a: int, b: int) -> Tuple[int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


def _digest_int(message: bytes, order_bits: Optional[int] = None) -> int:
    value = int.from_bytes(hashlib.sha256(message).digest(), "big")
    if order_bits is not None and order_bits < 256:
        value >>= 256 - order_bits
    return value


# ---------------------------------------------------------------------------
# RSA
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RsaKeyPair:
    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()


def rsa_generate(bits: int, rng: random.Random, e: int = 65537) -> RsaKeyPair:
    """Generate an RSA keypair with an n of roughly ``bits`` bits."""
    if bits < 64:
        raise ValueError("RSA modulus must be at least 64 bits")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = modinv(e, phi)
        return RsaKeyPair(n=p * q, e=e, d=d, p=p, q=q)


def rsa_encrypt(key: RsaKeyPair, message: int) -> int:
    if not 0 <= message < key.n:
        raise ValueError("message out of range for modulus")
    return pow(message, key.e, key.n)


def rsa_decrypt(key: RsaKeyPair, ciphertext: int) -> int:
    """CRT decryption — the same optimisation PKA/QAT hardware uses."""
    if not 0 <= ciphertext < key.n:
        raise ValueError("ciphertext out of range for modulus")
    dp = key.d % (key.p - 1)
    dq = key.d % (key.q - 1)
    q_inv = modinv(key.q, key.p)
    m1 = pow(ciphertext, dp, key.p)
    m2 = pow(ciphertext, dq, key.q)
    h = (q_inv * (m1 - m2)) % key.p
    return m2 + h * key.q


def rsa_sign(key: RsaKeyPair, message: bytes) -> int:
    return rsa_decrypt(key, _digest_int(message) % key.n)


def rsa_verify(key: RsaKeyPair, message: bytes, signature: int) -> bool:
    return rsa_encrypt(key, signature) == _digest_int(message) % key.n


# ---------------------------------------------------------------------------
# Diffie–Hellman
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DhGroup:
    p: int  # safe prime
    g: int


def dh_generate_group(bits: int, rng: random.Random) -> DhGroup:
    """Find a safe prime p = 2q + 1 and use g = 4 (a quadratic residue)."""
    if bits < 32:
        raise ValueError("DH group must be at least 32 bits")
    while True:
        q = generate_prime(bits - 1, rng)
        p = 2 * q + 1
        if is_probable_prime(p, rng=rng):
            return DhGroup(p=p, g=4)


def dh_keypair(group: DhGroup, rng: random.Random) -> Tuple[int, int]:
    private = rng.randrange(2, group.p - 2)
    return private, pow(group.g, private, group.p)


def dh_shared_secret(group: DhGroup, private: int, peer_public: int) -> int:
    if not 1 < peer_public < group.p - 1:
        raise ValueError("invalid peer public value")
    return pow(peer_public, private, group.p)


# ---------------------------------------------------------------------------
# DSA
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DsaParams:
    p: int
    q: int
    g: int


@dataclass(frozen=True)
class DsaKeyPair:
    params: DsaParams
    x: int  # private
    y: int  # public


def dsa_generate_params(p_bits: int, q_bits: int, rng: random.Random) -> DsaParams:
    """FIPS-186-style domain parameters with q | p−1."""
    if q_bits >= p_bits:
        raise ValueError("q must be smaller than p")
    q = generate_prime(q_bits, rng)
    while True:
        m = rng.getrandbits(p_bits - q_bits) | (1 << (p_bits - q_bits - 1))
        p = q * m + 1
        if p.bit_length() == p_bits and is_probable_prime(p, rng=rng):
            break
    while True:
        h = rng.randrange(2, p - 1)
        g = pow(h, (p - 1) // q, p)
        if g > 1:
            return DsaParams(p=p, q=q, g=g)


def dsa_keypair(params: DsaParams, rng: random.Random) -> DsaKeyPair:
    x = rng.randrange(1, params.q)
    return DsaKeyPair(params=params, x=x, y=pow(params.g, x, params.p))


def dsa_sign(key: DsaKeyPair, message: bytes, rng: random.Random) -> Tuple[int, int]:
    params = key.params
    digest = _digest_int(message, params.q.bit_length()) % params.q
    while True:
        k = rng.randrange(1, params.q)
        r = pow(params.g, k, params.p) % params.q
        if r == 0:
            continue
        s = (modinv(k, params.q) * (digest + key.x * r)) % params.q
        if s != 0:
            return r, s


def dsa_verify(key: DsaKeyPair, message: bytes, signature: Tuple[int, int]) -> bool:
    params = key.params
    r, s = signature
    if not (0 < r < params.q and 0 < s < params.q):
        return False
    digest = _digest_int(message, params.q.bit_length()) % params.q
    w = modinv(s, params.q)
    u1 = (digest * w) % params.q
    u2 = (r * w) % params.q
    v = ((pow(params.g, u1, params.p) * pow(key.y, u2, params.p)) % params.p) % params.q
    return v == r


# ---------------------------------------------------------------------------
# the cryptography network function
# ---------------------------------------------------------------------------

RSA_SIGN, DH_EXCHANGE, DSA_SIGN = "rsa", "dh", "dsa"


@dataclass(frozen=True)
class CryptoRequest:
    op: str
    message: bytes


@dataclass(frozen=True)
class CryptoResponse:
    op: str
    ok: bool
    artifact: Tuple[int, ...]


class CryptoFunction(NetworkFunction):
    """Public-key operations mixing RSA / DH / DSA like the PKA workload."""

    name = "crypto"
    stateful = False

    CONFIGS = (RSA_SIGN, DH_EXCHANGE, DSA_SIGN)

    def __init__(self, key_bits: int = 512, seed: int = 7) -> None:
        super().__init__(seed)
        keygen_rng = random.Random(seed ^ 0x5EED)
        self.key_bits = key_bits
        self.rsa_key = rsa_generate(key_bits, keygen_rng)
        self.dh_group = dh_generate_group(max(64, key_bits // 4), keygen_rng)
        self.dsa_key = dsa_keypair(
            dsa_generate_params(max(96, key_bits // 2), 64, keygen_rng), keygen_rng
        )
        self.op_counts: Dict[str, int] = {RSA_SIGN: 0, DH_EXCHANGE: 0, DSA_SIGN: 0}

    def process(self, request: CryptoRequest) -> CryptoResponse:
        if not isinstance(request, CryptoRequest):
            raise NetworkFunctionError(
                f"Crypto expects CryptoRequest, got {type(request)!r}"
            )
        self._count()
        if request.op == RSA_SIGN:
            signature = rsa_sign(self.rsa_key, request.message)
            ok = rsa_verify(self.rsa_key, request.message, signature)
            self.op_counts[RSA_SIGN] += 1
            return CryptoResponse(op=RSA_SIGN, ok=ok, artifact=(signature,))
        if request.op == DH_EXCHANGE:
            a_priv, a_pub = dh_keypair(self.dh_group, self._rng)
            b_priv, b_pub = dh_keypair(self.dh_group, self._rng)
            secret_a = dh_shared_secret(self.dh_group, a_priv, b_pub)
            secret_b = dh_shared_secret(self.dh_group, b_priv, a_pub)
            self.op_counts[DH_EXCHANGE] += 1
            return CryptoResponse(
                op=DH_EXCHANGE, ok=secret_a == secret_b, artifact=(secret_a,)
            )
        if request.op == DSA_SIGN:
            signature = dsa_sign(self.dsa_key, request.message, self._rng)
            ok = dsa_verify(self.dsa_key, request.message, signature)
            self.op_counts[DSA_SIGN] += 1
            return CryptoResponse(op=DSA_SIGN, ok=ok, artifact=signature)
        raise NetworkFunctionError(f"unknown crypto op {request.op!r}")

    def make_request(self, seq: int, flow: int) -> CryptoRequest:
        op = (RSA_SIGN, DH_EXCHANGE, DSA_SIGN)[seq % 3]
        message = f"packet-{seq}-flow-{flow}".encode()
        return CryptoRequest(op=op, message=message)
