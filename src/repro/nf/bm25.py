"""BM25 — Okapi search ranking (Table IV, stateless).

A complete in-memory search stage: an inverted index over a synthetic
document collection, scored with the standard Okapi BM25 formula
(Robertson & Zaragoza). Table IV's configurations set the term-vocabulary
size to 2K or 4K terms. Queries are short Zipf draws from the vocabulary,
responses are the top-k document ids with scores.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError
from repro.nf.corpus import make_documents, make_vocabulary, zipf_weights


@dataclass(frozen=True)
class Bm25Request:
    terms: Tuple[str, ...]
    top_k: int = 10


@dataclass(frozen=True)
class Bm25Response:
    results: Tuple[Tuple[int, float], ...]  # (doc_id, score), best first


class Bm25Index:
    """Inverted index + Okapi BM25 scorer."""

    def __init__(self, documents: Sequence[Sequence[str]], k1: float = 1.2, b: float = 0.75) -> None:
        if not documents:
            raise ValueError("BM25 index requires at least one document")
        self.k1 = k1
        self.b = b
        self.doc_count = len(documents)
        self.doc_lengths = [len(doc) for doc in documents]
        self.avg_doc_length = sum(self.doc_lengths) / self.doc_count
        # postings: term -> list of (doc_id, term_frequency)
        self.postings: Dict[str, List[Tuple[int, int]]] = defaultdict(list)
        for doc_id, doc in enumerate(documents):
            for term, tf in Counter(doc).items():
                self.postings[term].append((doc_id, tf))
        self.idf: Dict[str, float] = {}
        for term, posting in self.postings.items():
            df = len(posting)
            # BM25+ style idf, floored at zero to avoid negative idf for
            # terms present in most documents
            self.idf[term] = max(
                0.0, math.log((self.doc_count - df + 0.5) / (df + 0.5) + 1.0)
            )

    def score(self, terms: Sequence[str], top_k: int = 10) -> List[Tuple[int, float]]:
        scores: Dict[int, float] = defaultdict(float)
        for term in terms:
            posting = self.postings.get(term)
            if not posting:
                continue
            idf = self.idf[term]
            for doc_id, tf in posting:
                denom = tf + self.k1 * (
                    1.0 - self.b + self.b * self.doc_lengths[doc_id] / self.avg_doc_length
                )
                scores[doc_id] += idf * tf * (self.k1 + 1.0) / denom
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:top_k]


class Bm25Function(NetworkFunction):
    """Search ranking with Table IV vocabularies of 2K and 4K terms."""

    name = "bm25"
    stateful = False

    CONFIGS = (2_000, 4_000)

    def __init__(
        self,
        vocabulary_terms: int = 2_000,
        n_docs: int = 512,
        words_per_doc: int = 96,
        query_terms: int = 4,
        seed: int = 7,
    ) -> None:
        super().__init__(seed)
        if vocabulary_terms <= 0:
            raise ValueError("vocabulary_terms must be positive")
        if query_terms <= 0:
            raise ValueError("query_terms must be positive")
        self.vocabulary = make_vocabulary(vocabulary_terms, seed=seed)
        self.query_terms = query_terms
        documents = make_documents(self.vocabulary, n_docs, words_per_doc, seed=seed + 1)
        self.index = Bm25Index(documents)
        self._weights = zipf_weights(len(self.vocabulary))

    def process(self, request: Bm25Request) -> Bm25Response:
        if not isinstance(request, Bm25Request):
            raise NetworkFunctionError(
                f"BM25 expects Bm25Request, got {type(request)!r}"
            )
        self._count()
        return Bm25Response(results=tuple(self.index.score(request.terms, request.top_k)))

    def make_request(self, seq: int, flow: int) -> Bm25Request:
        terms = tuple(
            self._rng.choices(self.vocabulary, weights=self._weights, k=self.query_terms)
        )
        return Bm25Request(terms=terms)
