"""REM — regular-expression matching (Table IV, stateless).

The BlueField-2 REM accelerator scans packet payloads against a compiled
ruleset (Hyperscan-style). This module implements a real matching engine
from scratch:

* **Aho–Corasick automaton** for multi-literal rulesets — the dominant
  case for both the ``teakettle_2500`` ("tea", simple) and
  ``snort_literals`` ("lite", complex) rulesets the paper uses;
* **Thompson NFA** compiler/simulator for a practical regex subset
  (literals, ``.``, character classes, ``* + ?``, alternation, grouping),
  used for rules that are genuine regular expressions.

Since the original rulesets are licensed artifacts we ship synthetic
equivalents of the same scale class: ``tea`` ≈ thousands of short simple
literals, ``lite`` ≈ hundreds of long literals plus regex rules, which
preserves the simple-vs-complex performance inversion of §III-A.
"""

from __future__ import annotations

import random
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.nf.base import NetworkFunction, NetworkFunctionError
from repro.nf.corpus import make_vocabulary, make_text


# ---------------------------------------------------------------------------
# Aho–Corasick multi-literal matcher
# ---------------------------------------------------------------------------

class AhoCorasick:
    """Multi-pattern literal matcher with failure links."""

    def __init__(self, patterns: Sequence[str]) -> None:
        if not patterns:
            raise ValueError("at least one pattern is required")
        self.patterns = list(patterns)
        # goto function as list of dicts, failure links, output sets
        self._goto: List[Dict[str, int]] = [{}]
        self._fail: List[int] = [0]
        self._out: List[Set[int]] = [set()]
        for index, pattern in enumerate(self.patterns):
            if not pattern:
                raise ValueError("empty pattern is not allowed")
            self._insert(pattern, index)
        self._build_failure_links()

    def _insert(self, pattern: str, index: int) -> None:
        node = 0
        for ch in pattern:
            nxt = self._goto[node].get(ch)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._fail.append(0)
                self._out.append(set())
                self._goto[node][ch] = nxt
            node = nxt
        self._out[node].add(index)

    def _build_failure_links(self) -> None:
        queue: deque = deque()
        for child in self._goto[0].values():
            self._fail[child] = 0
            queue.append(child)
        while queue:
            node = queue.popleft()
            for ch, child in self._goto[node].items():
                queue.append(child)
                fail = self._fail[node]
                while fail and ch not in self._goto[fail]:
                    fail = self._fail[fail]
                self._fail[child] = self._goto[fail].get(ch, 0)
                if self._fail[child] == child:
                    self._fail[child] = 0
                self._out[child] |= self._out[self._fail[child]]

    @property
    def state_count(self) -> int:
        return len(self._goto)

    def search(self, text: str) -> List[Tuple[int, int]]:
        """All matches as (end_offset, pattern_index), in scan order."""
        matches: List[Tuple[int, int]] = []
        node = 0
        for offset, ch in enumerate(text):
            while node and ch not in self._goto[node]:
                node = self._fail[node]
            node = self._goto[node].get(ch, 0)
            for pattern_index in self._out[node]:
                matches.append((offset, pattern_index))
        return matches

    def contains_any(self, text: str) -> bool:
        node = 0
        for ch in text:
            while node and ch not in self._goto[node]:
                node = self._fail[node]
            node = self._goto[node].get(ch, 0)
            if self._out[node]:
                return True
        return False


# ---------------------------------------------------------------------------
# Thompson NFA regex engine
# ---------------------------------------------------------------------------

_EPSILON = None  # label for epsilon transitions


@dataclass
class _NfaFragment:
    start: int
    accepts: List[int]


class RegexSyntaxError(ValueError):
    """Raised for unsupported or malformed regex syntax."""


class RegexNfa:
    """A compiled regex supporting ``. [] [^] * + ? | ()``, literals, and
    edge anchors ``^``/``$``.

    Anchors are only recognised at the pattern boundaries and scope the
    *entire* pattern (``^a|b`` means ``^(?:a|b)`` here, unlike Python's
    ``re`` where the anchor binds to the first alternative)."""

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern
        pattern, self.anchored_start, self.anchored_end = self._strip_anchors(
            pattern
        )
        # transitions: state -> list of (label, next_state); label is either
        # a frozenset of accepted characters, the ANY sentinel, or epsilon
        self._transitions: List[List[Tuple[Optional[FrozenSet[str]], int]]] = []
        self._any: FrozenSet[str] = frozenset()  # sentinel identity for '.'
        fragment = self._parse(pattern)
        self.start = fragment.start
        self.accept = self._new_state()
        for state in fragment.accepts:
            self._add(state, _EPSILON, self.accept)

    # -- construction ---------------------------------------------------
    @staticmethod
    def _strip_anchors(pattern: str) -> Tuple[str, bool, bool]:
        anchored_start = pattern.startswith("^")
        if anchored_start:
            pattern = pattern[1:]
        anchored_end = pattern.endswith("$") and not pattern.endswith("\\$")
        if anchored_end:
            pattern = pattern[:-1]
        # interior anchors are not supported by this engine
        stripped = pattern.replace("\\^", "").replace("\\$", "")
        stripped = re.sub(r"\[[^\]]*\]", "", stripped)
        if "^" in stripped or "$" in stripped:
            raise RegexSyntaxError(
                "anchors are only supported at the pattern boundaries"
            )
        return pattern, anchored_start, anchored_end

    def _new_state(self) -> int:
        self._transitions.append([])
        return len(self._transitions) - 1

    def _add(self, src: int, label, dst: int) -> None:
        self._transitions[src].append((label, dst))

    def _parse(self, pattern: str) -> _NfaFragment:
        fragment, pos = self._parse_alternation(pattern, 0)
        if pos != len(pattern):
            raise RegexSyntaxError(f"unexpected {pattern[pos]!r} at {pos}")
        return fragment

    def _parse_alternation(self, pattern: str, pos: int) -> Tuple[_NfaFragment, int]:
        branches = []
        fragment, pos = self._parse_concat(pattern, pos)
        branches.append(fragment)
        while pos < len(pattern) and pattern[pos] == "|":
            fragment, pos = self._parse_concat(pattern, pos + 1)
            branches.append(fragment)
        if len(branches) == 1:
            return branches[0], pos
        start = self._new_state()
        accepts: List[int] = []
        for branch in branches:
            self._add(start, _EPSILON, branch.start)
            accepts.extend(branch.accepts)
        return _NfaFragment(start, accepts), pos

    def _parse_concat(self, pattern: str, pos: int) -> Tuple[_NfaFragment, int]:
        fragments: List[_NfaFragment] = []
        while pos < len(pattern) and pattern[pos] not in "|)":
            fragment, pos = self._parse_repeat(pattern, pos)
            fragments.append(fragment)
        if not fragments:
            # empty branch matches the empty string
            state = self._new_state()
            return _NfaFragment(state, [state]), pos
        combined = fragments[0]
        for nxt in fragments[1:]:
            for state in combined.accepts:
                self._add(state, _EPSILON, nxt.start)
            combined = _NfaFragment(combined.start, nxt.accepts)
        return combined, pos

    def _parse_repeat(self, pattern: str, pos: int) -> Tuple[_NfaFragment, int]:
        atom, pos = self._parse_atom(pattern, pos)
        while pos < len(pattern) and pattern[pos] in "*+?":
            op = pattern[pos]
            pos += 1
            if op == "*":
                start = self._new_state()
                self._add(start, _EPSILON, atom.start)
                for state in atom.accepts:
                    self._add(state, _EPSILON, atom.start)
                atom = _NfaFragment(start, atom.accepts + [start])
            elif op == "+":
                for state in atom.accepts:
                    self._add(state, _EPSILON, atom.start)
                atom = _NfaFragment(atom.start, atom.accepts)
            else:  # '?'
                start = self._new_state()
                self._add(start, _EPSILON, atom.start)
                atom = _NfaFragment(start, atom.accepts + [start])
        return atom, pos

    def _parse_atom(self, pattern: str, pos: int) -> Tuple[_NfaFragment, int]:
        if pos >= len(pattern):
            raise RegexSyntaxError("unexpected end of pattern")
        ch = pattern[pos]
        if ch == "(":
            fragment, pos = self._parse_alternation(pattern, pos + 1)
            if pos >= len(pattern) or pattern[pos] != ")":
                raise RegexSyntaxError("unbalanced parenthesis")
            return fragment, pos + 1
        if ch == "[":
            charset, pos = self._parse_class(pattern, pos + 1)
            return self._single(charset), pos
        if ch == ".":
            return self._single(self._any), pos + 1
        if ch == "\\":
            if pos + 1 >= len(pattern):
                raise RegexSyntaxError("dangling escape")
            return self._single(frozenset(pattern[pos + 1])), pos + 2
        if ch in "*+?)|":
            raise RegexSyntaxError(f"unexpected {ch!r} at {pos}")
        return self._single(frozenset(ch)), pos + 1

    def _parse_class(self, pattern: str, pos: int) -> Tuple[FrozenSet[str], int]:
        negated = pos < len(pattern) and pattern[pos] == "^"
        if negated:
            pos += 1
        chars: Set[str] = set()
        while pos < len(pattern) and pattern[pos] != "]":
            ch = pattern[pos]
            if ch == "\\":
                if pos + 1 >= len(pattern):
                    raise RegexSyntaxError("dangling escape in class")
                chars.add(pattern[pos + 1])
                pos += 2
                continue
            if (
                pos + 2 < len(pattern)
                and pattern[pos + 1] == "-"
                and pattern[pos + 2] != "]"
            ):
                lo, hi = ch, pattern[pos + 2]
                if ord(lo) > ord(hi):
                    raise RegexSyntaxError(f"inverted range {lo}-{hi}")
                chars.update(chr(c) for c in range(ord(lo), ord(hi) + 1))
                pos += 3
                continue
            chars.add(ch)
            pos += 1
        if pos >= len(pattern):
            raise RegexSyntaxError("unterminated character class")
        if negated:
            universe = {chr(c) for c in range(32, 127)}
            return frozenset(universe - chars), pos + 1
        return frozenset(chars), pos + 1

    def _single(self, charset: FrozenSet[str]) -> _NfaFragment:
        start = self._new_state()
        end = self._new_state()
        self._add(start, charset, end)
        return _NfaFragment(start, [end])

    # -- simulation -------------------------------------------------------
    def _closure(self, states: Set[int]) -> Set[int]:
        stack = list(states)
        closed = set(states)
        while stack:
            state = stack.pop()
            for label, nxt in self._transitions[state]:
                if label is _EPSILON and nxt not in closed:
                    closed.add(nxt)
                    stack.append(nxt)
        return closed

    def matches(self, text: str) -> bool:
        """Full-string match."""
        current = self._closure({self.start})
        for ch in text:
            nxt: Set[int] = set()
            for state in current:
                for label, dst in self._transitions[state]:
                    if label is _EPSILON:
                        continue
                    if label is self._any or ch in label:
                        nxt.add(dst)
            if not nxt:
                current = set()
                break
            current = self._closure(nxt)
        return self.accept in current

    def _prefix_match(self, text: str) -> bool:
        """Does some prefix of ``text`` match? (a ``^``-anchored search)"""
        current = self._closure({self.start})
        if self.accept in current:
            return True
        for ch in text:
            nxt: Set[int] = set()
            for state in current:
                for label, dst in self._transitions[state]:
                    if label is _EPSILON:
                        continue
                    if label is self._any or ch in label:
                        nxt.add(dst)
            if not nxt:
                return False
            current = self._closure(nxt)
            if self.accept in current:
                return True
        return False

    def _suffix_match(self, text: str) -> bool:
        """Does some suffix of ``text`` match? (a ``$``-anchored search)"""
        start_closure = self._closure({self.start})
        current: Set[int] = set(start_closure)
        for ch in text:
            nxt: Set[int] = set()
            for state in current:
                for label, dst in self._transitions[state]:
                    if label is _EPSILON:
                        continue
                    if label is self._any or ch in label:
                        nxt.add(dst)
            current = self._closure(nxt) | start_closure
        return self.accept in current

    def search(self, text: str) -> bool:
        """Containment respecting the pattern's anchors (what packet
        inspection needs)."""
        if self.anchored_start and self.anchored_end:
            return self.matches(text)
        if self.anchored_start:
            return self._prefix_match(text)
        if self.anchored_end:
            return self._suffix_match(text)
        start_closure = self._closure({self.start})
        if self.accept in start_closure:
            return True
        current: Set[int] = set(start_closure)
        for ch in text:
            nxt: Set[int] = set()
            for state in current:
                for label, dst in self._transitions[state]:
                    if label is _EPSILON:
                        continue
                    if label is self._any or ch in label:
                        nxt.add(dst)
            current = self._closure(nxt) | start_closure
            if self.accept in current:
                return True
        return False

    @property
    def state_count(self) -> int:
        return len(self._transitions)


# ---------------------------------------------------------------------------
# Rulesets and the REM function
# ---------------------------------------------------------------------------

@dataclass
class Ruleset:
    """A compiled REM ruleset: literals (AC) plus regex rules (NFA)."""

    name: str
    literals: List[str]
    regexes: List[str] = field(default_factory=list)

    def compile(self) -> "CompiledRuleset":
        return CompiledRuleset(self)


class CompiledRuleset:
    def __init__(self, ruleset: Ruleset) -> None:
        self.name = ruleset.name
        self.automaton = AhoCorasick(ruleset.literals) if ruleset.literals else None
        self.nfas = [RegexNfa(rx) for rx in ruleset.regexes]

    @property
    def complexity(self) -> int:
        """Total automaton states — a proxy for ruleset complexity."""
        states = self.automaton.state_count if self.automaton else 0
        states += sum(nfa.state_count for nfa in self.nfas)
        return states

    def scan(self, text: str) -> Tuple[int, Tuple[int, ...]]:
        """Returns (#literal matches, indices of regex rules that hit)."""
        literal_hits = len(self.automaton.search(text)) if self.automaton else 0
        regex_hits = tuple(
            i for i, nfa in enumerate(self.nfas) if nfa.search(text)
        )
        return literal_hits, regex_hits


def make_tea_ruleset(n_patterns: int = 2500, seed: int = 41) -> Ruleset:
    """Synthetic analogue of teakettle_2500: many short simple literals."""
    vocab = make_vocabulary(n_patterns, seed=seed)
    return Ruleset(name="tea", literals=vocab)


def make_lite_ruleset(n_literals: int = 400, n_regexes: int = 24, seed: int = 43) -> Ruleset:
    """Synthetic analogue of snort_literals: long literals + regex rules."""
    rng = random.Random(seed)
    vocab = make_vocabulary(n_literals * 3, seed=seed)
    literals = [
        "-".join(rng.sample(vocab, k=rng.randint(2, 4))) for _ in range(n_literals)
    ]
    regexes = []
    for _ in range(n_regexes):
        a, b = rng.sample(vocab, k=2)
        regexes.append(f"{a}[0-9a-f]+{b}|{b}.?{a}")
    return Ruleset(name="lite", literals=literals, regexes=regexes)


@dataclass(frozen=True)
class RemRequest:
    text: str


@dataclass(frozen=True)
class RemResponse:
    literal_hits: int
    regex_hits: Tuple[int, ...]

    @property
    def matched(self) -> bool:
        return self.literal_hits > 0 or bool(self.regex_hits)


class RemFunction(NetworkFunction):
    """Packet-payload inspection against a compiled ruleset."""

    name = "rem"
    stateful = False

    CONFIGS = ("tea", "lite")

    def __init__(self, ruleset: str = "lite", seed: int = 7, scale: float = 1.0) -> None:
        super().__init__(seed)
        if ruleset == "tea":
            spec = make_tea_ruleset(n_patterns=max(10, int(2500 * scale)))
        elif ruleset == "lite":
            spec = make_lite_ruleset(
                n_literals=max(4, int(400 * scale)),
                n_regexes=max(2, int(24 * scale)),
            )
        else:
            raise ValueError(f"unknown ruleset {ruleset!r} (use 'tea' or 'lite')")
        self.ruleset_name = ruleset
        self.compiled = spec.compile()
        # payload source vocabulary: overlaps the ruleset so some packets hit
        self._vocab = make_vocabulary(600, seed=seed + 5)
        if self.compiled.automaton is not None:
            self._vocab[:40] = self.compiled.automaton.patterns[:40]

    def process(self, request: RemRequest) -> RemResponse:
        if not isinstance(request, RemRequest):
            raise NetworkFunctionError(f"REM expects RemRequest, got {type(request)!r}")
        self._count()
        literal_hits, regex_hits = self.compiled.scan(request.text)
        return RemResponse(literal_hits=literal_hits, regex_hits=regex_hits)

    def make_request(self, seq: int, flow: int) -> RemRequest:
        text = make_text(self._vocab, n_words=24, seed=self._rng.randrange(1 << 30))
        return RemRequest(text=text)
