"""EMA — exponential moving average over batched samples (Table IV, stateful).

Maintains, per key, the exponentially weighted moving average
``ema ← α·x + (1−α)·ema`` of a metric stream, batched 4 or 8 samples per
request as in Table IV. The per-key averages are the coherent shared
state under cooperative processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.nf.base import NetworkFunctionError, StatefulFunction
from repro.nf.corpus import make_keys


@dataclass(frozen=True)
class EmaRequest:
    samples: Tuple[Tuple[str, float], ...]


@dataclass(frozen=True)
class EmaResponse:
    averages: Tuple[float, ...]


class EmaFunction(StatefulFunction):
    """Per-key EMA with Table IV batch sizes 4 and 8."""

    name = "ema"

    CONFIGS = (4, 8)

    def __init__(
        self,
        batch_size: int = 8,
        alpha: float = 0.125,
        key_space: int = 1024,
        seed: int = 7,
    ) -> None:
        super().__init__(seed)
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.batch_size = batch_size
        self.alpha = alpha
        self.key_space = key_space
        self._keys = make_keys(key_space, seed=seed)
        self._averages: Dict[str, float] = {}

    def process(self, request: EmaRequest) -> EmaResponse:
        if not isinstance(request, EmaRequest):
            raise NetworkFunctionError(f"EMA expects EmaRequest, got {type(request)!r}")
        self._count()
        out: List[float] = []
        for key, value in request.samples:
            self.state_access(key, write=True)
            previous = self._averages.get(key)
            if previous is None:
                updated = float(value)
            else:
                updated = self.alpha * value + (1.0 - self.alpha) * previous
            self._averages[key] = updated
            out.append(updated)
        return EmaResponse(averages=tuple(out))

    def average(self, key: str) -> float:
        if key not in self._averages:
            raise KeyError(key)
        return self._averages[key]

    def tracked_keys(self) -> int:
        return len(self._averages)

    def make_request(self, seq: int, flow: int) -> EmaRequest:
        samples = tuple(
            (
                self._keys[self._rng.randrange(self.key_space)],
                self._rng.uniform(0.0, 100.0),
            )
            for _ in range(self.batch_size)
        )
        return EmaRequest(samples=samples)

    def reset(self) -> None:
        super().reset()
        self._averages.clear()
