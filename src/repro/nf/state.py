"""Shared state with coherence accounting (§V-C).

When both the SNIC processor and the host processor run a *stateful*
function, they must share the function's state coherently. A PCIe-attached
SNIC has no hardware cache coherence, so every remote state access pays a
software round trip; a CXL-attached SNIC (emulated with UPI in the paper)
gets hardware coherence at cache-line costs.

This module models the state as a set of blocks under a directory-style
MSI protocol: each block has one owner (who may hold it Modified) and a
sharer set. Crossing the interconnect to fetch or invalidate costs the
latencies supplied by the interconnect model; local re-accesses are free.
The actual state *values* live in the NF objects — the domain only tracks
who must pay coherence latency when.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Set


@dataclass(frozen=True)
class CoherenceCosts:
    """Per-event latency of the coherence fabric, in seconds.

    ``read_miss_s``  — fetch a block from the current owner.
    ``ownership_s``  — acquire exclusive ownership (invalidate sharers).
    ``coherent``     — whether the fabric provides hardware coherence at
    all; a non-coherent fabric (plain PCIe) pays the same numeric costs
    but flags the configuration so experiments can reject it (§V-C says
    PCIe-SNIC "cannot efficiently support stateful functions").
    """

    read_miss_s: float
    ownership_s: float
    coherent: bool = True

    def __post_init__(self) -> None:
        if self.read_miss_s < 0 or self.ownership_s < 0:
            raise ValueError("coherence costs cannot be negative")


def canonical_key_bytes(key: object) -> bytes:
    """Deterministic, type-tagged byte encoding of a state key.

    Block placement must be identical across interpreter invocations
    (PYTHONHASHSEED) and across processes, or coherence stalls — and
    with them run payloads and cache keys — stop being reproducible.
    Type tags keep ``1``, ``"1"`` and ``(1,)`` from colliding; nested
    containers are length-framed so ``("ab", "c")`` and ``("a", "bc")``
    differ.  Keys that have no deterministic identity (arbitrary
    objects, whose ``hash()``/``repr()`` embed the id) are rejected.
    """
    if key is None:
        return b"n:"
    if isinstance(key, bool):
        return b"b:1" if key else b"b:0"
    if isinstance(key, int):
        return b"i:%d" % key
    if isinstance(key, float):
        return b"f:" + repr(key).encode()
    if isinstance(key, str):
        return b"s:" + key.encode()
    if isinstance(key, (bytes, bytearray)):
        return b"y:" + bytes(key)
    if isinstance(key, tuple):
        parts = [canonical_key_bytes(item) for item in key]
        return b"t:" + b"".join(b"%d|" % len(p) + p for p in parts)
    if isinstance(key, frozenset):
        parts = sorted(canonical_key_bytes(item) for item in key)
        return b"fs:" + b"".join(b"%d|" % len(p) + p for p in parts)
    raise TypeError(
        f"state key of type {type(key).__name__!r} has no deterministic "
        "canonical encoding; use str/bytes/int/float/tuple/frozenset keys"
    )


#: CXL.cache / UPI-class coherence: sub-microsecond line transfers.
CXL_COSTS = CoherenceCosts(read_miss_s=0.6e-6, ownership_s=0.9e-6, coherent=True)
#: PCIe-attached SNIC: software-mediated sharing, microseconds per access.
PCIE_COSTS = CoherenceCosts(read_miss_s=2.5e-6, ownership_s=5.0e-6, coherent=False)


@dataclass
class _BlockState:
    owner: str
    sharers: Set[str] = field(default_factory=set)
    dirty: bool = False


@dataclass
class CoherenceStats:
    local_hits: int = 0
    read_misses: int = 0
    ownership_transfers: int = 0
    invalidations: int = 0
    total_stall_s: float = 0.0


class SharedStateDomain:
    """Directory-based MSI coherence over hashed state blocks."""

    def __init__(
        self,
        costs: CoherenceCosts,
        block_count: int = 1024,
        home_agent: str = "host",
    ) -> None:
        if block_count <= 0:
            raise ValueError("block_count must be positive")
        self.costs = costs
        self.block_count = block_count
        self.home_agent = home_agent
        self._blocks: Dict[int, _BlockState] = {}
        self.stats = CoherenceStats()

    def _block_of(self, key: object) -> int:
        # str/bytes hashing is randomized per interpreter invocation, which
        # would make block placement (and the runner's content-addressed
        # cache) non-reproducible; crc32 over a canonical encoding is stable
        # for every key type (builtins.hash() would also be id-based — i.e.
        # different every run — for plain objects, and PYTHONHASHSEED-salted
        # for tuples containing strings)
        if isinstance(key, (str, bytes)):
            data = key.encode() if isinstance(key, str) else key
            return zlib.crc32(data) % self.block_count
        return zlib.crc32(canonical_key_bytes(key)) % self.block_count

    def access(self, agent: str, key: object, write: bool) -> float:
        """Account one state access by ``agent``; returns stall seconds."""
        if agent is None:
            raise ValueError("state access requires an agent name")
        index = self._block_of(key)
        block = self._blocks.get(index)
        if block is None:
            block = _BlockState(owner=self.home_agent, sharers={self.home_agent})
            self._blocks[index] = block

        cost = 0.0
        if write:
            if block.owner == agent and block.sharers <= {agent}:
                self.stats.local_hits += 1
            else:
                cost = self.costs.ownership_s
                self.stats.ownership_transfers += 1
                self.stats.invalidations += max(0, len(block.sharers - {agent}))
                block.owner = agent
                block.sharers = {agent}
            block.dirty = True
        else:
            if agent in block.sharers:
                self.stats.local_hits += 1
            else:
                cost = self.costs.read_miss_s
                self.stats.read_misses += 1
                block.sharers.add(agent)
        self.stats.total_stall_s += cost
        return cost

    def sharing_ratio(self) -> float:
        """Fraction of accesses that crossed the interconnect."""
        total = (
            self.stats.local_hits
            + self.stats.read_misses
            + self.stats.ownership_transfers
        )
        if total == 0:
            return 0.0
        return (self.stats.read_misses + self.stats.ownership_transfers) / total

    def reset(self) -> None:
        self._blocks.clear()
        self.stats = CoherenceStats()
