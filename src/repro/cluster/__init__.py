"""Rack-scale multi-server simulation (the cluster layer).

Composes N :class:`~repro.core.systems.ServerSystem` instances — HAL,
SLB, host-only, SNIC-only, mixable — inside **one** simulator behind a
front-tier L4 balancer, and asks the deployment question the single-server
evaluation cannot: how many HAL servers does a rack need, and how much
energy does SNIC-first cooperative computing save at rack scale when the
load is diurnal?

Layers (each its own module):

* :mod:`repro.cluster.policies` — pluggable dispatch policies over
  lightweight server slots (flow-hash/ECMP, round-robin,
  power-of-two-choices on RxQ occupancy, packing);
* :mod:`repro.cluster.fronttier` — the ToR-resident L4 balancer port:
  VIP → per-server SNIC rewrites on ingress, source masquerade on egress,
  both RFC 1624 checksum-correct;
* :mod:`repro.cluster.power` — rack power: member models + ToR overhead,
  with whole-server deep sleep extending :mod:`repro.hw.power`;
* :mod:`repro.cluster.autoscaler` — wakes/parks servers from the same
  observables LBP exports (delivered rate, Rx-queue occupancy);
* :mod:`repro.cluster.system` — :class:`ClusterSystem`, the facade that
  mirrors the ``ServerSystem`` run/result contract, and :func:`run_rack`,
  the executor entry point.

Rack-level numbers are *derived* (ToR watts, server deep-sleep draw,
wake-up latency are modelled from typical hardware, not measured by the
paper) — see EXPERIMENTS.md.
"""

from repro.cluster.autoscaler import AutoscalerConfig, RackAutoscaler
from repro.cluster.fronttier import TOR_LATENCY_S, FrontTierPort
from repro.cluster.policies import POLICIES, ServerSlot, make_policy
from repro.cluster.power import RackPowerConfig, RackPowerModel
from repro.cluster.system import MEMBER_KINDS, ClusterSystem, run_rack

__all__ = [
    "AutoscalerConfig",
    "ClusterSystem",
    "FrontTierPort",
    "MEMBER_KINDS",
    "POLICIES",
    "RackAutoscaler",
    "RackPowerConfig",
    "RackPowerModel",
    "ServerSlot",
    "TOR_LATENCY_S",
    "make_policy",
    "run_rack",
]
