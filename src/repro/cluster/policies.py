"""Front-tier dispatch policies.

An L4 balancer picks one back-end server per packet.  Policies operate
on :class:`ServerSlot` views — index, addressing, an occupancy probe and
a routable flag — rather than on full systems, so the same policy code
runs inside the simulated front tier and standalone in the rack-dispatch
benchmark kernel.

The four policies span the design space the rack experiment compares:

* ``flowhash`` — ECMP-style static hashing of the flow id; no feedback,
  spreads load evenly across awake servers (flows stick to a server as
  long as the awake set is stable);
* ``roundrobin`` — per-packet rotation; the even-spread upper bound;
* ``p2c`` — power-of-two-choices on Rx-queue occupancy: two random
  candidates, forward to the emptier one (the classic load-aware
  balancer, using exactly the ``rte_eth_rx_queue_count`` observable LBP
  already polls);
* ``packing`` — concentrate load on the lowest-indexed awake servers and
  spill to the next only when the target's queues pass a watermark; this
  is the policy that starves whole servers so the autoscaler can park
  them (server-level sleep, HolDCSim-style).
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional, Sequence

from repro.net.addressing import AddressPlan
from repro.net.packet import Packet
from repro.sim.rng import RngRegistry

#: policy names accepted by :func:`make_policy` (and the CLI)
POLICIES = ("flowhash", "roundrobin", "p2c", "packing")

#: packing spill watermark: 2x LBP's high watermark — spill to the next
#: server once the preferred one queues deeper than Algorithm 1 would
#: ever let its own SNIC run
PACKING_SPILL_PACKETS = 32


def _zero_occupancy() -> int:
    return 0


class ServerSlot:
    """The front tier's view of one back-end server."""

    __slots__ = (
        "index",
        "plan",
        "occupancy",
        "routable",
        "dispatched_packets",
        "dispatched_bits",
        "responses",
    )

    def __init__(
        self,
        index: int,
        plan: AddressPlan,
        occupancy: Optional[Callable[[], int]] = None,
    ) -> None:
        self.index = index
        self.plan = plan
        #: max Rx-queue backlog probe (``rte_eth_rx_queue_count``-class)
        self.occupancy = occupancy if occupancy is not None else _zero_occupancy
        #: cleared while the server drains or sleeps
        self.routable = True
        self.dispatched_packets = 0
        self.dispatched_bits = 0
        self.responses = 0


class DispatchPolicy:
    """Pick one slot from the non-empty ``awake`` sequence."""

    name = "abstract"

    def select(self, awake: Sequence[ServerSlot], packet: Packet) -> ServerSlot:
        raise NotImplementedError


class FlowHashPolicy(DispatchPolicy):
    name = "flowhash"

    def select(self, awake: Sequence[ServerSlot], packet: Packet) -> ServerSlot:
        # crc32, not hash(): str/int hashing is randomized per interpreter
        # invocation, which would break cross-invocation reproducibility
        digest = zlib.crc32(packet.flow_id.to_bytes(8, "big"))
        return awake[digest % len(awake)]


class RoundRobinPolicy(DispatchPolicy):
    name = "roundrobin"

    def __init__(self) -> None:
        self._counter = 0

    def select(self, awake: Sequence[ServerSlot], packet: Packet) -> ServerSlot:
        slot = awake[self._counter % len(awake)]
        self._counter += 1
        return slot


class PowerOfTwoPolicy(DispatchPolicy):
    """Two random candidates, forward to the lower Rx-queue occupancy."""

    name = "p2c"

    def __init__(self, rng: RngRegistry) -> None:
        self._rng = rng.stream("fronttier-p2c")

    def select(self, awake: Sequence[ServerSlot], packet: Packet) -> ServerSlot:
        n = len(awake)
        if n == 1:
            return awake[0]
        randrange = self._rng.randrange
        first = awake[randrange(n)]
        second = awake[randrange(n)]
        if first is second:
            return first
        occ_first = first.occupancy()
        occ_second = second.occupancy()
        if occ_first < occ_second:
            return first
        if occ_second < occ_first:
            return second
        return first if first.index <= second.index else second


class PackingPolicy(DispatchPolicy):
    """Fill the lowest-indexed awake server; spill past the watermark."""

    name = "packing"

    def __init__(self, spill_packets: int = PACKING_SPILL_PACKETS) -> None:
        if spill_packets < 1:
            raise ValueError("spill watermark must be >= 1 packet")
        self.spill_packets = spill_packets

    def select(self, awake: Sequence[ServerSlot], packet: Packet) -> ServerSlot:
        best = awake[0]
        best_occ = best.occupancy()
        if best_occ < self.spill_packets:
            return best
        for slot in awake[1:]:
            occ = slot.occupancy()
            if occ < self.spill_packets:
                return slot
            if occ < best_occ:
                best, best_occ = slot, occ
        # everyone is past the watermark: least loaded wins
        return best


def make_policy(name: str, rng: RngRegistry) -> DispatchPolicy:
    """Instantiate a dispatch policy by name."""
    if name == "flowhash":
        return FlowHashPolicy()
    if name == "roundrobin":
        return RoundRobinPolicy()
    if name == "p2c":
        return PowerOfTwoPolicy(rng)
    if name == "packing":
        return PackingPolicy()
    raise ValueError(f"unknown dispatch policy {name!r}; known: {POLICIES}")
