"""The front-tier L4 balancer port.

A rack's clients address one virtual identity (the VIP).  The ToR-
resident balancer picks a back-end server per packet (policy-driven),
rewrites the destination from the VIP to that server's SNIC identity —
the same RFC 1624 incremental-checksum rewrite the HLB director performs
inside each server — and forwards it through an
:class:`~repro.net.eswitch.EmbeddedSwitch` whose ports are the servers'
ingress paths.  Responses pass back through :meth:`egress`, which
masquerades the per-server SNIC source as the VIP so the single-source
illusion of §V-A holds at rack scope too: clients can never tell how
many servers (or which) served them.

The ToR hop itself is charged by back-dating ``created_at`` — the same
mechanism every forward stage in the repo uses — so rack p99 includes
the extra switch traversal.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.cluster.policies import DispatchPolicy, ServerSlot
from repro.net.addressing import RackAddressPlan
from repro.net.eswitch import EmbeddedSwitch, PortHandler
from repro.net.packet import Packet
from repro.sim.engine import Simulator

#: one ToR store-and-forward traversal (cut-through switches do better;
#: derived, not paper-anchored)
TOR_LATENCY_S = 1e-6


class FrontTierPort:
    """Policy-driven VIP dispatch over an embedded-switch port table."""

    def __init__(
        self,
        sim: Simulator,
        rack_plan: RackAddressPlan,
        policy: DispatchPolicy,
        slots: Sequence[ServerSlot],
        handlers: Sequence[PortHandler],
        tor_latency_s: float = TOR_LATENCY_S,
    ) -> None:
        if len(slots) != len(handlers):
            raise ValueError("one ingress handler per server slot")
        if len(slots) != len(rack_plan):
            raise ValueError("slot count must match the rack address plan")
        self.sim = sim
        self.vip = rack_plan.front.snic
        self.policy = policy
        self.slots: List[ServerSlot] = list(slots)
        self.tor_latency_s = tor_latency_s
        self.eswitch = EmbeddedSwitch(name="front-tier")
        for slot, handler in zip(self.slots, handlers):
            port = f"s{slot.index}"
            self.eswitch.attach_port(port, handler)
            self.eswitch.add_rule(slot.plan.snic, port)
        self.dispatched_packets = 0
        self.dispatched_bits = 0
        self.responses = 0
        #: dispatch decisions that switched away from the previous target
        #: server — the balancer-decision signal the trace records
        self.reroutes = 0
        self._last_target = -1
        #: repro.obs tracer; None (untraced) costs one branch per dispatch
        self.tracer = None

    # -- data path -------------------------------------------------------
    def routable_slots(self) -> List[ServerSlot]:
        return [slot for slot in self.slots if slot.routable]

    def ingress(self, packet: Packet) -> None:
        """Dispatch one client packet to a back-end server."""
        awake = [slot for slot in self.slots if slot.routable]
        if not awake:
            # the autoscaler keeps >= min_awake servers routable; if a
            # misconfigured caller parks everything, degrade gracefully
            awake = self.slots
        slot = awake[0] if len(awake) == 1 else self.policy.select(awake, packet)
        multiplicity = packet.multiplicity
        bits = packet.size_bytes * 8 * multiplicity
        self.dispatched_packets += multiplicity
        self.dispatched_bits += bits
        slot.dispatched_packets += multiplicity
        slot.dispatched_bits += bits
        if slot.index != self._last_target:
            self.reroutes += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "rack/front-tier",
                    f"dispatch->s{slot.index}",
                    self.sim.now,
                    {"occupancy": slot.occupancy(), "awake": len(awake)},
                )
            self._last_target = slot.index
        # charge the ToR traversal, then the checksum-correct VIP rewrite
        packet.created_at -= self.tor_latency_s
        packet.rewrite_destination(slot.plan.snic)
        self.eswitch.forward(packet)

    def egress(self, slot: ServerSlot, packet: Packet) -> None:
        """Masquerade a server's response as the VIP on its way out."""
        if packet.src != self.vip:
            packet.rewrite_source(self.vip)
        multiplicity = packet.multiplicity
        slot.responses += multiplicity
        self.responses += multiplicity

    # -- reporting -------------------------------------------------------
    def dispatched_gbps(self, elapsed_s: float) -> float:
        if elapsed_s <= 0:
            return 0.0
        return self.dispatched_bits / elapsed_s / 1e9

    def per_server_share(self) -> List[float]:
        total = self.dispatched_bits
        if total <= 0:
            return [0.0] * len(self.slots)
        return [slot.dispatched_bits / total for slot in self.slots]
