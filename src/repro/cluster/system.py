"""The rack facade: N server systems behind one front tier.

:class:`ClusterSystem` mirrors the :class:`~repro.core.systems.ServerSystem`
run/result contract — ``run(generator, duration_s) -> RunMetrics`` — so
the runner, the report tables and the CLI treat a rack exactly like a
single server.  Internally it composes N member systems inside **one**
simulator:

* every member shares the cluster's :class:`~repro.sim.metrics.RunMetrics`
  (one latency reservoir, so rack p99 spans all servers) but keeps its own
  per-server :class:`~repro.hw.power.PowerModel`;
* every member draws randomness from a :meth:`~repro.sim.rng.RngRegistry.spawn`
  child registry keyed by its slot name, so adding server ``s4`` to a rack
  cannot perturb a single draw inside ``s0``–``s3``;
* engine names are prefixed ``s<i>:`` so the per-engine crc32 jitter
  streams decorrelate across servers.

:func:`run_rack` is the executor entry point: it scales the selected
Meta trace to rack size (N servers see N× the average offered load,
clipped at N× line rate) and runs the diurnal workload against the rack.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Type

from repro.cluster.autoscaler import AutoscalerConfig, ManagedServer, RackAutoscaler
from repro.cluster.fronttier import TOR_LATENCY_S, FrontTierPort
from repro.cluster.policies import ServerSlot, make_policy
from repro.cluster.power import RackPowerConfig, RackPowerModel
from repro.core.hal import HalSystem
from repro.core.slb import HostSideSlbSystem, SlbSystem
from repro.core.static import HostOnlySystem, SnicOnlySystem
from repro.core.systems import DRAIN_S, ServerSystem
from repro.hw.power import ROLE_HOST, ROLE_SNIC, PowerConfig
from repro.net.addressing import RackAddressPlan
from repro.net.traffic import (
    LINE_RATE_GBPS,
    META_TRACES,
    LogNormalSpec,
    LogNormalTraceGenerator,
    PacketGenerator,
)
from repro.obs.tracer import current_session
from repro.sim.engine import Simulator
from repro.sim.metrics import RunMetrics
from repro.sim.rng import RngRegistry

_MEMBER_CLASSES: Dict[str, Type[ServerSystem]] = {
    "hal": HalSystem,
    "slb": SlbSystem,
    "host": HostOnlySystem,
    "snic": SnicOnlySystem,
    "host-slb": HostSideSlbSystem,
}

#: server kinds a rack can hold (comma-separate to mix, e.g. "hal,host")
MEMBER_KINDS = tuple(_MEMBER_CLASSES)


def _member_kinds(member_kind: str, servers: int) -> List[str]:
    """Expand ``"hal"`` or ``"hal,host"`` to one kind per slot (cycling)."""
    kinds = [k.strip() for k in member_kind.split(",") if k.strip()]
    if not kinds:
        raise ValueError("member_kind cannot be empty")
    for kind in kinds:
        if kind not in _MEMBER_CLASSES:
            raise ValueError(
                f"unknown member kind {kind!r}; known: {MEMBER_KINDS}"
            )
    return [kinds[i % len(kinds)] for i in range(servers)]


class ClusterSystem:
    """A rack of member server systems behind a front-tier balancer."""

    kind = "cluster"

    def __init__(
        self,
        member_kind: str = "hal",
        function: str = "nat",
        servers: int = 4,
        seed: int = 2024,
        policy: str = "packing",
        autoscale: bool = True,
        functional_rate: float = 0.0,
        power_config: Optional[PowerConfig] = None,
        rack_power_config: Optional[RackPowerConfig] = None,
        autoscaler_config: Optional[AutoscalerConfig] = None,
        tor_latency_s: float = TOR_LATENCY_S,
    ) -> None:
        if servers < 1:
            raise ValueError("a rack needs at least one server")
        self.member_kind = member_kind
        self.function = function
        self.policy_name = policy
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.metrics = RunMetrics()
        self.rack_plan = RackAddressPlan.build(servers)
        #: the client-facing plan (client + VIP) — what generators target
        self.plan = self.rack_plan.front

        # rack-level observability first, so the cluster run groups ahead
        # of its members' per-server runs in the trace
        self._obs_session = current_session()
        self.tracer = (
            self._obs_session.new_run(f"cluster[{servers}]/{member_kind}/{function}")
            if self._obs_session.enabled
            else None
        )

        kinds = _member_kinds(member_kind, servers)
        self.members: List[ServerSystem] = []
        for index, kind in enumerate(kinds):
            instance = f"s{index}"
            member = _MEMBER_CLASSES[kind](
                function,
                functional_rate=functional_rate,
                power_config=power_config,
                sim=self.sim,
                plan=self.rack_plan.servers[index],
                rng=self.rng.spawn(instance),
                metrics=self.metrics,
                instance=instance,
            )
            self.members.append(member)
        if self.tracer is not None:
            # members each wired the shared kernel to their own tracer as
            # they built; the rack run owns kernel-level events
            self.sim.set_tracer(self.tracer)

        self.slots: List[ServerSlot] = []
        for index, member in enumerate(self.members):
            engines = member.engines()

            def occupancy(engines=engines) -> int:
                return max(e.rx_queue_occupancy() for e in engines)

            self.slots.append(
                ServerSlot(index, self.rack_plan.servers[index], occupancy)
            )

        self.front = FrontTierPort(
            self.sim,
            self.rack_plan,
            make_policy(policy, self.rng),
            self.slots,
            [member.ingress for member in self.members],
            tor_latency_s=tor_latency_s,
        )
        self.front.tracer = self.tracer
        for slot, member in zip(self.slots, self.members):
            member._egress_hook = (
                lambda packet, slot=slot: self.front.egress(slot, packet)
            )

        self.rack_power = RackPowerModel(
            self.sim, [member.power for member in self.members], rack_power_config
        )
        self.autoscaler: Optional[RackAutoscaler] = None
        if autoscale:
            self.autoscaler = RackAutoscaler(
                self.sim,
                self.front,
                [
                    ManagedServer(slot, member)
                    for slot, member in zip(self.slots, self.members)
                ],
                self.rack_power,
                autoscaler_config,
                tracer=self.tracer,
            )
        self._stoppers: List = []

    # -- plumbing ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.members)

    def add_stopper(self, stop) -> None:
        self._stoppers.append(stop)

    def stop_periodic(self) -> None:
        for stop in self._stoppers:
            stop()
        self._stoppers.clear()
        if self.autoscaler is not None:
            self.autoscaler.stop()

    def ingress(self, packet) -> None:
        self.front.ingress(packet)

    def _rack_snic_share(self) -> float:
        """Delivered-bits SNIC share across every member (forward stages
        move packets, they don't complete them, so they don't count)."""
        snic = host = 0
        for member in self.members:
            roles = member.power._roles
            for engine in member.engines():
                if engine.forward_stage:
                    continue
                role = roles.get(engine.name)
                if role == ROLE_SNIC:
                    snic += engine.delivered_bits
                elif role == ROLE_HOST:
                    host += engine.delivered_bits
        total = snic + host
        return snic / total if total > 0 else 0.0

    # -- run loop ---------------------------------------------------------
    def run(self, generator: PacketGenerator, duration_s: float) -> RunMetrics:
        """Drive ``generator`` into the front tier for ``duration_s``
        simulated seconds, drain, and return rack-level metrics."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        start = self.sim.now
        # lint: disable=DET01 wall time feeds only the flight record, never simulated results
        wall_started = perf_counter()
        if self.tracer is not None:
            self.tracer.set_label(
                f"cluster[{len(self.members)}]/{self.member_kind}/"
                f"{self.function}@{generator.offered_gbps:g}Gbps"
            )
            generator.tracer = self.tracer
            self._start_probe_pump(generator, duration_s)
        generator.start(self.sim, self.ingress, duration_s)

        window_s = 0.025
        last_bytes = [0]
        max_window = [0.0]

        def sample_window() -> None:
            delivered = self.metrics.delivered_bytes
            gbps = (delivered - last_bytes[0]) * 8 / window_s / 1e9
            last_bytes[0] = delivered
            if gbps > max_window[0]:
                max_window[0] = gbps

        self.add_stopper(self.sim.every(window_s, sample_window))

        self.sim.run(until=start + duration_s)
        backlog = (
            generator.generated_packets
            - self.metrics.delivered_packets
            - self.metrics.dropped_packets
        )
        self.metrics.extras["final_backlog_packets"] = float(max(0, backlog))
        # freeze the awake integral before periodic control stops: the
        # drain window would otherwise dilute the diurnal duty cycle
        awake_mean = (
            self.autoscaler.awake_mean() if self.autoscaler is not None else
            float(len(self.members))
        )
        self.stop_periodic()
        self.sim.run(until=start + duration_s + DRAIN_S)

        metrics = self.metrics
        metrics.offered_gbps = generator.offered_gbps
        metrics.duration_s = duration_s
        metrics.generated_packets = generator.generated_packets
        metrics.average_power_w = self.rack_power.average_watts()
        metrics.power_breakdown = self.rack_power.breakdown()
        metrics.snic_share = self._rack_snic_share()
        metrics.extras["max_window_gbps"] = max(
            max_window[0], metrics.throughput_gbps
        )
        metrics.extras["servers"] = float(len(self.members))
        metrics.extras["rack_awake_mean"] = awake_mean
        metrics.extras["front_reroutes"] = float(self.front.reroutes)
        metrics.extras["front_dispatched_gbps"] = self.front.dispatched_gbps(
            duration_s
        )
        if self.autoscaler is not None:
            metrics.extras["rack_wakes"] = float(self.autoscaler.wakes)
            metrics.extras["rack_sleeps"] = float(self.autoscaler.sleeps)
        if self.tracer is not None:
            # lint: disable=DET01 flight-record wall time only
            wall_s = perf_counter() - wall_started
            self._record_flight(generator, wall_s)
        return metrics

    # -- observability ----------------------------------------------------
    def _start_probe_pump(self, generator: PacketGenerator, duration_s: float) -> None:
        """Rack-level counters + probes; members' engine/power tracks are
        wired by their own constructors."""
        tracer = self.tracer
        session = self._obs_session
        interval = session.probe_interval_s
        if interval is None:
            interval = max(duration_s / 100.0, 1e-5)
        sim = self.sim
        metrics = self.metrics
        front = self.front
        autoscaler = self.autoscaler
        state = {
            "generated": generator.generated_bytes,
            "delivered": metrics.delivered_bytes,
        }
        # per-run prefix: one focused comparison runs several racks in
        # one session, and probe series are append-only in time order
        prefix = tracer.label
        offered_series = session.probes.series(f"{prefix}/rack/offered_gbps")
        delivered_series = session.probes.series(f"{prefix}/rack/delivered_gbps")
        awake_series = session.probes.series(f"{prefix}/rack/awake_servers")
        power_series = session.probes.series(f"{prefix}/rack/system_w")

        # the pump exists only in traced runs (installed behind the one
        # is-not-None branch in run()), so tracer is non-None by construction
        def pump() -> None:  # lint: disable=OBS01
            now = sim.now
            gen_bytes = generator.generated_bytes
            del_bytes = metrics.delivered_bytes
            offered_gbps = (gen_bytes - state["generated"]) * 8 / interval / 1e9
            delivered_gbps = (del_bytes - state["delivered"]) * 8 / interval / 1e9
            state["generated"] = gen_bytes
            state["delivered"] = del_bytes
            watts = self.rack_power.instantaneous_watts()
            awake = (
                autoscaler.active_count()
                if autoscaler is not None
                else len(self.members)
            )
            tracer.counter("rack/traffic", "offered_gbps", now, offered_gbps)
            tracer.counter("rack/traffic", "delivered_gbps", now, delivered_gbps)
            tracer.counter("rack/power", "system_w", now, watts)
            tracer.counter("rack/power", "awake_servers", now, awake)
            tracer.counter(
                "rack/front-tier", "routable", now, len(front.routable_slots())
            )
            offered_series.sample(now, offered_gbps)
            delivered_series.sample(now, delivered_gbps)
            awake_series.sample(now, float(awake))
            power_series.sample(now, watts)

        self.add_stopper(sim.every(interval, pump))

    def _record_flight(self, generator: PacketGenerator, wall_s: float) -> None:
        metrics = self.metrics
        summary = self._obs_session.flight.record_run(
            self.tracer.label,
            kind=self.kind,
            member_kind=self.member_kind,
            servers=len(self.members),
            policy=self.policy_name,
            function=self.function,
            offered_gbps=generator.offered_gbps,
            duration_s=metrics.duration_s,
            wall_s=wall_s,
            sim_events=self.sim.events_processed,
            generated_packets=metrics.generated_packets,
            delivered_packets=metrics.delivered_packets,
            dropped_packets=metrics.dropped_packets,
            throughput_gbps=metrics.throughput_gbps,
            p99_latency_us=metrics.p99_latency_us,
            average_power_w=metrics.average_power_w,
            snic_share=metrics.snic_share,
            trace_events=len(self.tracer.events),
            trace_dropped=self.tracer.dropped,
        )
        summary["front_reroutes"] = self.front.reroutes
        if self.autoscaler is not None:
            summary["rack_wakes"] = self.autoscaler.wakes
            summary["rack_sleeps"] = self.autoscaler.sleeps


def scaled_trace(trace: str, servers: int) -> LogNormalSpec:
    """The rack-size version of a Meta trace: same diurnal shape (μ/σ),
    N× the average offered rate, clipped at N× line rate downstream."""
    if trace not in META_TRACES:
        raise ValueError(f"unknown trace {trace!r}; known: {sorted(META_TRACES)}")
    base = META_TRACES[trace]
    return LogNormalSpec(
        name=base.name,
        mu=base.mu,
        sigma=base.sigma,
        average_gbps=base.average_gbps * servers,
    )


def run_rack(
    member_kind: str,
    function: str,
    trace: str,
    config: Optional["object"] = None,
    servers: int = 4,
    policy: str = "packing",
    autoscale: bool = True,
    **kwargs,
) -> RunMetrics:
    """One rack-scale trace run (the Fig. 10-style workhorse).

    ``config`` is a :class:`repro.exp.server.RunConfig` (imported lazily
    to keep the cluster layer importable without the experiment harness).
    """
    if config is None:
        from repro.exp.server import DEFAULT_CONFIG as config  # noqa: F811
    if getattr(config, "sim_mode", "packet") == "flow":
        # the fluid fast path reuses this module's scaled_trace and the
        # real autoscaler/rack-power controllers; imported lazily to keep
        # the packet-mode cluster importable without the flow layer
        from repro.flow.cluster import run_rack_flow

        return run_rack_flow(
            member_kind,
            function,
            trace,
            config,
            servers=servers,
            policy=policy,
            autoscale=autoscale,
            **kwargs,
        )
    spec = scaled_trace(trace, servers)
    cluster = ClusterSystem(
        member_kind,
        function,
        servers=servers,
        seed=config.seed,
        policy=policy,
        autoscale=autoscale,
        functional_rate=config.functional_rate,
        **kwargs,
    )
    generator = LogNormalTraceGenerator(
        cluster.plan,
        config.spec(spec.average_gbps * 3),
        cluster.rng,
        spec,
        interval_s=config.trace_interval_s,
        line_rate_gbps=LINE_RATE_GBPS * servers,
    )
    return cluster.run(generator, config.duration_s)
