"""Rack power: member server models + ToR switch overhead.

Each member server keeps its own :class:`~repro.hw.power.PowerModel`
(idle floor, per-engine dynamic draw, host polling), so the single-server
calibration of §III-B carries over unchanged.  The rack adds what only
exists at rack scope:

* the ToR switch — a chassis base draw plus a per-active-downlink port
  draw (a parked server's NIC drops its link to a low-power state);
* whole-server deep sleep — the autoscaler parks drained servers, and
  :meth:`sleep_server` drops that member's 194 W idle floor to the
  suspend-to-RAM level via
  :meth:`~repro.hw.power.PowerModel.set_server_asleep`.

These coefficients are derived from typical rack hardware, not measured
by the paper (see EXPERIMENTS.md's reading guide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hw.power import PowerModel
from repro.sim.engine import Simulator
from repro.sim.metrics import PowerIntegrator


@dataclass(frozen=True)
class RackPowerConfig:
    """ToR switch coefficients (derived, not paper-anchored)."""

    tor_base_w: float = 88.0
    tor_port_w: float = 1.5

    def __post_init__(self) -> None:
        if self.tor_base_w < 0 or self.tor_port_w < 0:
            raise ValueError("ToR power coefficients cannot be negative")


class RackPowerModel:
    """Aggregates member power models and integrates the ToR draw."""

    def __init__(
        self,
        sim: Simulator,
        members: Sequence[PowerModel],
        config: Optional[RackPowerConfig] = None,
    ) -> None:
        if not members:
            raise ValueError("a rack needs at least one member power model")
        self.sim = sim
        self.members: List[PowerModel] = list(members)
        self.config = config if config is not None else RackPowerConfig()
        self.integrator = PowerIntegrator(start_time=sim.now)
        self._awake_ports = len(self.members)
        self._update_tor()

    def _update_tor(self) -> None:
        watts = self.config.tor_base_w + self.config.tor_port_w * self._awake_ports
        self.integrator.set_level("tor", watts, self.sim.now)

    # -- server sleep/wake ----------------------------------------------
    def sleep_server(self, index: int) -> None:
        member = self.members[index]
        if not member.server_asleep:
            member.set_server_asleep(True)
            self._awake_ports -= 1
            self._update_tor()

    def wake_server(self, index: int) -> None:
        member = self.members[index]
        if member.server_asleep:
            member.set_server_asleep(False)
            self._awake_ports += 1
            self._update_tor()

    # -- reporting -------------------------------------------------------
    def average_watts(self) -> float:
        """Time-averaged rack draw: every member plus the ToR."""
        total = self.integrator.average_watts(self.sim.now, "tor")
        for member in self.members:
            total += member.average_watts()
        return total

    def instantaneous_watts(self) -> float:
        total = self.integrator.instantaneous_watts()
        for member in self.members:
            total += member.integrator.instantaneous_watts()
        return total

    def breakdown(self) -> Dict[str, float]:
        """Per-component averages, member keys namespaced by server index.

        Engine components are already namespaced by the per-server engine
        prefix; the member-level constants (``idle``, ``hlb``) are not,
        so the rack prefixes every member key with ``s<i>/`` to keep the
        merged map collision-free."""
        result: Dict[str, float] = {
            "tor": self.integrator.average_watts(self.sim.now, "tor")
        }
        for index, member in enumerate(self.members):
            for component, watts in member.breakdown().items():
                result[f"s{index}/{component}"] = watts
        return result
