"""The rack autoscaler: wake/park whole servers from LBP's observables.

HAL's LBP (Algorithm 1) already exports everything a rack controller
needs — delivered throughput (rx_burst deltas) and Rx-queue occupancy —
so the autoscaler is deliberately the same shape: a periodic tick that
EWMA-smooths the front tier's dispatched rate, computes how many servers
the rack needs at a target utilisation, and walks the awake set toward
that with hysteresis.  Scaling *up* is immediate but pays a wake-up
latency (suspend-to-RAM resume, link retrain — milliseconds, the cost
Fig. 10-style energy savings must absorb); scaling *down* drains first:
a surplus server stops being routable, finishes its queued work, and
only then parks into deep sleep.

Server lifecycle::

    AWAKE --(surplus for N ticks)--> DRAINING --(queues empty)--> ASLEEP
    ASLEEP --(demand)--> WAKING --(wake_latency_s)--> AWAKE

Packing order is stable: wakes take the lowest-indexed sleeper, drains
take the highest-indexed awake server, so under the ``packing`` dispatch
policy load concentrates at low indices and the high indices sleep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.cluster.fronttier import FrontTierPort
from repro.cluster.policies import ServerSlot
from repro.cluster.power import RackPowerModel
from repro.core.systems import ServerSystem
from repro.sim.engine import EventHandle, Simulator

STATE_AWAKE = "awake"
STATE_DRAINING = "draining"
STATE_ASLEEP = "asleep"
STATE_WAKING = "waking"


@dataclass(frozen=True)
class AutoscalerConfig:
    """Rack scaling knobs."""

    period_s: float = 500e-6
    #: size the awake set so it runs at this fraction of capacity
    target_utilization: float = 0.6
    min_awake: int = 1
    #: suspend-to-RAM resume + NIC link retrain (derived, not paper-anchored)
    wake_latency_s: float = 2e-3
    #: surplus must persist this many ticks before a server drains
    sleep_after_ticks: int = 4
    ewma_alpha: float = 0.25
    #: burst escape hatch: any routable server queuing this deep wakes one more
    occupancy_wake_packets: int = 64

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.wake_latency_s < 0:
            raise ValueError("autoscaler periods must be positive")
        if not 0 < self.target_utilization <= 1:
            raise ValueError("target utilization must be in (0, 1]")
        if self.min_awake < 1 or self.sleep_after_ticks < 1:
            raise ValueError("min_awake and sleep_after_ticks must be >= 1")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma alpha must be in (0, 1]")


class ManagedServer:
    """One member under autoscaler control."""

    __slots__ = ("slot", "system", "capacity_gbps", "state")

    def __init__(self, slot: ServerSlot, system: ServerSystem) -> None:
        self.slot = slot
        self.system = system
        # processing capacity only: forward stages move packets, they
        # don't complete them, so they don't add rack capacity
        self.capacity_gbps = sum(
            engine.capacity_gbps
            for engine in system.engines()
            if not engine.forward_stage
        )
        self.state = STATE_AWAKE

    def quiescent(self) -> bool:
        """No core busy, nothing queued anywhere — safe to park."""
        for engine in self.system.engines():
            if engine.busy_cores > 0 or engine.total_queued_packets() > 0:
                return False
        return True


class RackAutoscaler:
    """Periodic controller over the awake set."""

    def __init__(
        self,
        sim: Simulator,
        front: FrontTierPort,
        servers: Sequence[ManagedServer],
        rack_power: RackPowerModel,
        config: Optional[AutoscalerConfig] = None,
        tracer=None,
    ) -> None:
        if not servers:
            raise ValueError("autoscaler needs at least one server")
        self.sim = sim
        self.front = front
        self.servers: List[ManagedServer] = list(servers)
        self.rack_power = rack_power
        self.config = config = config if config is not None else AutoscalerConfig()
        if config.min_awake > len(self.servers):
            raise ValueError("min_awake exceeds the rack size")
        self.tracer = tracer
        self.wakes = 0
        self.sleeps = 0
        self.rate_ewma_gbps = 0.0
        self._last_bits = front.dispatched_bits
        self._surplus_ticks = 0
        # ∫ active dt for the awake_mean metric
        self._active_integral = 0.0
        self._last_t = sim.now
        self._capacity_mean = sum(s.capacity_gbps for s in self.servers) / len(
            self.servers
        )
        # in-flight wake completions by server index — named (not closure)
        # events so checkpoint code can snapshot and re-arm them
        # lint: disable=SNAP01 captured as wake-timer records by serve/state._collect_timers and re-armed by _rearm_timers, not by the _autoscaler_state walker
        self._pending_wakes: Dict[int, EventHandle] = {}
        self._stop = sim.every(config.period_s, self._tick)

    def stop(self) -> None:
        self._stop()

    # -- accounting ------------------------------------------------------
    def active_count(self) -> int:
        """Servers drawing full power (everything but ASLEEP)."""
        return sum(1 for s in self.servers if s.state != STATE_ASLEEP)

    def routable_count(self) -> int:
        return sum(1 for s in self.servers if s.slot.routable)

    def awake_mean(self) -> float:
        """Time-averaged count of non-sleeping servers."""
        now = self.sim.now
        integral = self._active_integral + self.active_count() * (now - self._last_t)
        elapsed = now  # integrator starts at sim time 0 for a fresh cluster
        return integral / elapsed if elapsed > 0 else float(self.active_count())

    def _advance_integral(self) -> None:
        now = self.sim.now
        self._active_integral += self.active_count() * (now - self._last_t)
        self._last_t = now

    # -- transitions -----------------------------------------------------
    def _wake(self, server: ManagedServer) -> None:
        server.state = STATE_WAKING
        self.wakes += 1
        index = server.slot.index
        if self.tracer is not None:
            self.tracer.instant(
                "rack/autoscaler", f"wake s{index}", self.sim.now,
                {"rate_gbps": round(self.rate_ewma_gbps, 3)},
            )

        self._pending_wakes[index] = self.sim.schedule(
            self.config.wake_latency_s, self._finish_wake, server
        )

    def _finish_wake(self, server: ManagedServer) -> None:
        self._pending_wakes.pop(server.slot.index, None)
        self._advance_integral()
        self.rack_power.wake_server(server.slot.index)
        for engine in server.system.engines():
            # engines with their own sleep management (HAL host cores)
            # stay parked until traffic demands them; everything else
            # resumes polling immediately
            if engine.sleeping and not engine.sleep_enabled:
                engine.sleeping = False
                engine._notify_power()
        server.state = STATE_AWAKE
        server.slot.routable = True

    def _drain(self, server: ManagedServer) -> None:
        self._advance_integral()
        server.state = STATE_DRAINING
        server.slot.routable = False
        if self.tracer is not None:
            self.tracer.instant(
                "rack/autoscaler", f"drain s{server.slot.index}", self.sim.now,
                {"rate_gbps": round(self.rate_ewma_gbps, 3)},
            )

    def _park(self, server: ManagedServer) -> None:
        self._advance_integral()
        index = server.slot.index
        for engine in server.system.engines():
            if not engine.sleeping:
                engine.sleeping = True
                engine._notify_power()
        self.rack_power.sleep_server(index)
        server.state = STATE_ASLEEP
        self.sleeps += 1
        if self.tracer is not None:
            self.tracer.instant("rack/autoscaler", f"park s{index}", self.sim.now)

    # -- the control loop -------------------------------------------------
    def _tick(self) -> None:
        config = self.config
        self._advance_integral()
        bits = self.front.dispatched_bits
        instantaneous = (bits - self._last_bits) / config.period_s / 1e9
        self._last_bits = bits
        self.rate_ewma_gbps += config.ewma_alpha * (
            instantaneous - self.rate_ewma_gbps
        )

        # park any draining server whose queues ran dry
        for server in self.servers:
            if server.state == STATE_DRAINING and server.quiescent():
                self._park(server)

        needed = math.ceil(
            self.rate_ewma_gbps / (config.target_utilization * self._capacity_mean)
        )
        needed = max(config.min_awake, min(len(self.servers), needed))
        routable = [s for s in self.servers if s.slot.routable]
        # burst escape hatch: deep queues mean the EWMA is lagging reality
        if any(
            s.slot.occupancy() >= config.occupancy_wake_packets for s in routable
        ):
            needed = min(len(self.servers), max(needed, len(routable) + 1))

        # waking servers count toward the target (their latency is already
        # committed); draining ones do not (they are on the way out)
        committed = sum(
            1 for s in self.servers if s.state in (STATE_AWAKE, STATE_WAKING)
        )
        if needed > committed:
            self._surplus_ticks = 0
            for server in self.servers:  # lowest index first
                if committed >= needed:
                    break
                if server.state == STATE_ASLEEP:
                    self._wake(server)
                    committed += 1
                elif server.state == STATE_DRAINING:
                    # cheapest capacity: un-drain before waking a sleeper
                    self._advance_integral()
                    server.state = STATE_AWAKE
                    server.slot.routable = True
                    committed += 1
        elif needed < len(routable):
            self._surplus_ticks += 1
            if self._surplus_ticks >= config.sleep_after_ticks:
                self._surplus_ticks = 0
                # highest index drains first (stable packing order)
                for server in reversed(self.servers):
                    if len(routable) <= max(needed, config.min_awake):
                        break
                    if server.state == STATE_AWAKE and server.slot.routable:
                        self._drain(server)
                        routable.remove(server)
                        break  # one server per decision: gentle scale-down
        else:
            self._surplus_ticks = 0
