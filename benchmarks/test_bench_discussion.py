"""Benchmarks: the §VIII discussion analyses and the validation sweep."""

from _benchutil import emit

from repro.exp.discussion import run_complementary, run_dvfs
from repro.exp.validation import run as run_validation


def test_bench_dvfs(benchmark, bench_config):
    result = benchmark(run_dvfs, bench_config)
    emit(result)
    assert all(row["saved_fraction"] <= 0.02 for row in result.rows)


def test_bench_complementary(benchmark, bench_config):
    result = benchmark.pedantic(
        run_complementary, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    final = result.rows[-1]
    assert final["offered_gbps"] == 100.0
    assert final["tp_gbps"] < 50.0


def test_bench_validation(benchmark, bench_config):
    result = benchmark.pedantic(
        run_validation, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    verdicts = [row["verdict"] for row in result.rows]
    assert verdicts.count("OK") >= len(verdicts) - 2
