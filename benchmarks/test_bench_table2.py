"""Benchmark: regenerate Table II — SNIC SLO throughput and the
normalised energy efficiency at the SLO point.

Expected shape: SLO throughputs land near the paper's (KVS 3, Count 58,
EMA 6, NAT 41, BM25 1, KNN 7, Bayes 0.1, REM 30, Crypto 28, Comp 43
Gbps) and the SNIC's EE advantage is in the paper's 1.14-1.55 band.
"""

from _benchutil import emit

from repro.exp import table2


def test_bench_table2(benchmark, bench_config):
    result = benchmark.pedantic(
        table2.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    rows = {row["function"]: row for row in result.rows}

    for fn, row in rows.items():
        paper = row["paper_slo_gbps"]
        measured = row["slo_gbps"]
        # within 2x band of the paper's SLO (most land much closer)
        assert paper / 2.2 <= measured <= paper * 2.2, (fn, measured, paper)
    # EE ratios: SNIC wins at the SLO point for every cooperative function
    for fn, row in rows.items():
        if fn == "compress":
            continue  # host cannot reach the compression SLO rate at all
        assert 1.05 < row["ee_ratio"] < 1.7, (fn, row["ee_ratio"])
