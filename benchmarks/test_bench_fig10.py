"""Benchmark: regenerate Fig. 10 — BlueField-3 CPU vs Sapphire Rapids.

Expected shape (paper §VIII): SPR still wins clearly for the heavy
software functions (BF-3 up to ~80% lower throughput) while the
lightweight Count/NAT tie because the 100 Gbps client saturates first.
"""

from _benchutil import emit

from repro.exp import fig10


def test_bench_fig10(benchmark, bench_config):
    result = benchmark.pedantic(
        fig10.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    rows = {row["function"]: row for row in result.rows}

    # lightweight functions: both line-limited -> near tie
    assert rows["count"]["tp_ratio"] > 0.9
    assert rows["nat"]["tp_ratio"] > 0.8
    # heavy functions: the gap persists
    for fn in ("kvs", "bm25", "bayes", "knn", "ema"):
        assert rows[fn]["tp_ratio"] < 0.75, fn
    # SPR keeps an EE edge for heavy functions (throughput dominates EE)
    assert rows["bm25"]["ee_ratio"] < 1.0
