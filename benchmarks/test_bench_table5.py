"""Benchmark: regenerate Table V — the full trace-driven grid
(3 traces x 10 workloads x {SNIC, host, HAL}).

Expected shape (paper §VII-B): averaged across workloads HAL gives
~28-35% better energy efficiency and ~5-13% higher max throughput than
host-only, and 64-94% lower p99 than SNIC-only.
"""

from _benchutil import emit

from repro.exp import table5


def test_bench_table5(benchmark, trace_config):
    result = benchmark.pedantic(
        table5.run, args=(trace_config,), rounds=1, iterations=1
    )
    emit(result)
    summary = table5.summarize(result)
    emit(summary)

    for row in summary.rows:
        # headline claims: EE gain over host, p99 cut versus SNIC. The p99
        # cut materialises on the bursty traces (cache/hadoop) where the
        # SNIC alone drowns; on web the SNIC rarely queues at short
        # durations, so HAL simply matches it.
        assert row["hal_ee_vs_host"] > 1.1, row
        assert row["hal_maxtp_vs_host"] > 0.95, row
        limit = 0.6 if row["trace"] in ("cache", "hadoop") else 1.05
        assert row["hal_p99_vs_snic"] < limit, row
