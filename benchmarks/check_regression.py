#!/usr/bin/env python
"""Gate a hot-path benchmark run against the committed baseline.

Usage::

    python benchmarks/check_regression.py BENCH_results.json \
        [--baseline benchmarks/baseline.json] [--tolerance 0.30]

Exit status 1 when any metric regresses past the tolerance — throughput
metrics (``*_per_s``) by dropping below ``baseline * (1 - tolerance)``,
wall-clock metrics by rising above ``baseline * (1 + tolerance)``.
Direction per metric comes from :data:`repro.bench.METRIC_DIRECTIONS`.

The fig5 identity fields are compared exactly: a payload-hash change
means the "optimisation" changed simulated results and always fails,
whatever the timings say. A spec-hash change only warns — the cache key
covers the source tree, so it moves with any code edit.
"""

from __future__ import annotations

import argparse
import json
import sys

sys.path.insert(0, "src")

from repro.bench import METRIC_DIRECTIONS  # noqa: E402

DEFAULT_BASELINE = "benchmarks/baseline.json"
DEFAULT_TOLERANCE = 0.30


def check(current: dict, baseline: dict, tolerance: float) -> int:
    failures = 0
    if current.get("scale") != baseline.get("scale"):
        print(
            f"WARNING: scale mismatch (current {current.get('scale')} vs "
            f"baseline {baseline.get('scale')}) — timings not comparable"
        )
    for name, base_value in baseline["metrics"].items():
        value = current["metrics"].get(name)
        if value is None:
            print(f"FAIL {name}: missing from current results")
            failures += 1
            continue
        if value == base_value:
            print(
                f"WARNING: {name} matches the baseline bit-exactly "
                f"({value!r}) — continuous timings never do that; the "
                "committed value was likely hand-edited, re-measure it"
            )
        direction = METRIC_DIRECTIONS.get(name, "higher")
        if direction == "higher":
            bound = base_value * (1.0 - tolerance)
            ok = value >= bound
            verdict = f"{value:,.0f} vs baseline {base_value:,.0f} (floor {bound:,.0f})"
        else:
            bound = base_value * (1.0 + tolerance)
            ok = value <= bound
            verdict = f"{value:.3f} vs baseline {base_value:.3f} (ceiling {bound:.3f})"
        print(f"{'ok  ' if ok else 'FAIL'} {name}: {verdict}")
        if not ok:
            failures += 1

    for label in ("fig5", "rack", "fabric"):
        base_sha = baseline.get("identity", {}).get(f"{label}_payload_sha256")
        cur_sha = current.get("identity", {}).get(f"{label}_payload_sha256")
        if base_sha and cur_sha:
            if base_sha == cur_sha:
                print(f"ok   {label} payload identity: {cur_sha[:16]}…")
            else:
                print(
                    f"FAIL {label} payload identity: {cur_sha[:16]}… != "
                    f"baseline {base_sha[:16]}… (simulated results changed)"
                )
                failures += 1
        base_key = baseline.get("identity", {}).get(f"{label}_spec_hash")
        cur_key = current.get("identity", {}).get(f"{label}_spec_hash")
        if base_key and cur_key and base_key != cur_key:
            print(
                f"note {label} cache key moved ({cur_key[:16]}… vs "
                f"{base_key[:16]}…) — expected whenever repro sources change"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="BENCH_results.json from a bench run")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    args = parser.parse_args(argv)
    with open(args.results) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    failures = check(current, baseline, args.tolerance)
    if failures:
        print(f"{failures} benchmark regression(s) past ±{args.tolerance:.0%}")
        return 1
    print(f"all benchmarks within ±{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
