"""Benchmark: regenerate Fig. 5 — software load balancing (SLB) for NAT
at 80 Gbps offered, sweeping Fwd_Th with 1 and 4 forwarding cores.

Expected shape (paper §IV): one core drops ~58-61% across thresholds;
four cores sustain ~80 Gbps at Fwd_Th=20 (with p99 *worse* than letting
the SNIC drown), decaying to ~53 Gbps at Fwd_Th=60.
"""

from _benchutil import emit

from repro.exp import fig5


def test_bench_fig5(benchmark, bench_config):
    result = benchmark.pedantic(
        fig5.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    rows = {(row["slb_cores"], row["fwd_th_gbps"]): row for row in result.rows}

    assert 0.45 < rows[(1, 20.0)]["drop_rate"] < 0.70
    assert rows[(4, 20.0)]["tp_gbps"] > 76.0
    assert 48.0 < rows[(4, 60.0)]["tp_gbps"] < 60.0
    # throughput decays monotonically-ish with threshold for 4 cores
    assert rows[(4, 60.0)]["tp_gbps"] < rows[(4, 20.0)]["tp_gbps"]
