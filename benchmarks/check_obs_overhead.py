#!/usr/bin/env python
"""CI obs-overhead gate: fleet telemetry must be free when off and
read-only when on.

Usage: python benchmarks/check_obs_overhead.py [--shard-jobs-list 1,2]
           [--max-overhead 1.75] [--journal-out FILE] [--trace-out FILE]

Three invariants over the fabric smoke cell, at every worker count in
``--shard-jobs-list``:

1. **Off is free** — the untraced payload sha256 matches the committed
   ``fabric_payload_sha256`` baseline (telemetry's existence changed
   nothing).
2. **On is read-only** — the payload of a fully-instrumented run
   (journal + SLO monitors + Prometheus snapshot + downsampled series)
   is byte-identical to the untraced payload.  Telemetry observes the
   simulation; it never perturbs it.
3. **On is cheap** — traced epoch-barrier wall-clock stays within
   ``--max-overhead`` x untraced (best-of-``--repeats``), with a small
   absolute slack so sub-second smoke runs don't flake on scheduler
   noise.

``--journal-out`` / ``--trace-out`` save the instrumented run's journal
and multi-process fleet trace for CI artifact upload.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from time import perf_counter

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

DEFAULT_BASELINE = str(pathlib.Path(__file__).parent / "baseline.json")

#: absolute slack added to the relative bound: smoke runs finish in
#: fractions of a second, where scheduler noise dwarfs any real ratio
ABS_SLACK_S = 0.05


def _sha(result) -> str:
    import hashlib

    blob = json.dumps(result.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--shard-jobs-list", default="1,2",
        help="comma-separated worker counts to check (default 1,2)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=1.75,
        help="max traced/untraced step wall-clock ratio (default 1.75)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repeats; best-of is compared (default 3)",
    )
    parser.add_argument(
        "--journal-out", default=None,
        help="save the instrumented run's journal here (CI artifact)",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="save the instrumented run's fleet trace here (CI artifact)",
    )
    args = parser.parse_args(argv)

    from repro.bench import fabric_smoke_config
    from repro.fabric.shard import SHARD_FACTORY
    from repro.fabric.system import run_fabric
    from repro.obs.export import write_chrome_trace
    from repro.obs.fleet import FleetTelemetry
    from repro.obs.slo import parse_slo_rule
    from repro.runner.sharded import ShardedRunner

    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    expected = baseline["identity"]["fabric_payload_sha256"]
    counts = [int(part) for part in args.shard_jobs_list.split(",") if part]
    config = fabric_smoke_config()
    rules = [parse_slo_rule("power_w<=1.0")]  # deliberately tight: must fail

    failed = False
    last_telemetry = None
    for jobs in counts:
        untraced_best = traced_best = float("inf")
        untraced_sha = traced_sha = None
        for _ in range(max(1, args.repeats)):
            runner = ShardedRunner(
                config.shard_specs(), SHARD_FACTORY, jobs=jobs
            )
            try:
                result = run_fabric(config, runner=runner)
                untraced_best = min(untraced_best, runner.step_wall_s)
            finally:
                runner.close()
            untraced_sha = _sha(result)

            telemetry = FleetTelemetry(rules=rules)
            runner = ShardedRunner(
                config.shard_specs(telemetry=True), SHARD_FACTORY, jobs=jobs
            )
            try:
                result = run_fabric(
                    config, runner=runner, telemetry=telemetry, label="smoke"
                )
                traced_best = min(traced_best, runner.step_wall_s)
            finally:
                runner.close()
            telemetry.close()
            traced_sha = _sha(result)
            last_telemetry = telemetry

        if untraced_sha != expected:
            print(
                f"FAIL: K={jobs}: untraced fabric payload moved\n"
                f"  baseline {expected}\n  current  {untraced_sha}"
            )
            failed = True
        elif traced_sha != untraced_sha:
            print(
                f"FAIL: K={jobs}: telemetry perturbed the payload\n"
                f"  untraced {untraced_sha}\n  traced   {traced_sha}"
            )
            failed = True
        else:
            print(
                f"OK: K={jobs}: traced payload byte-identical to untraced "
                f"baseline ({traced_sha[:12]}…)"
            )
        bound = untraced_best * args.max_overhead + ABS_SLACK_S
        if traced_best > bound:
            print(
                f"FAIL: K={jobs}: traced barriers {traced_best:.3f}s > "
                f"bound {bound:.3f}s (untraced {untraced_best:.3f}s x "
                f"{args.max_overhead} + {ABS_SLACK_S}s slack)"
            )
            failed = True
        else:
            ratio = traced_best / untraced_best if untraced_best > 0 else 0.0
            print(
                f"OK: K={jobs}: traced barriers {traced_best:.3f}s vs "
                f"untraced {untraced_best:.3f}s ({ratio:.2f}x, bound "
                f"{args.max_overhead}x + {ABS_SLACK_S}s)"
            )

    if last_telemetry is not None:
        if not last_telemetry.slo_failed:
            print("FAIL: the deliberately tight SLO rule did not fail")
            failed = True
        else:
            print("OK: tight SLO rule power_w<=1.0 failed as designed")
        if args.trace_out:
            trace = write_chrome_trace(
                last_telemetry.to_trace_session(), args.trace_out
            )
            print(
                f"saved fleet trace: {args.trace_out} "
                f"({len(trace['traceEvents'])} events)"
            )

    if args.journal_out:
        # journal a fresh instrumented run so the artifact is complete
        telemetry = FleetTelemetry(journal_path=args.journal_out, rules=rules)
        run_fabric(config, telemetry=telemetry, label="smoke")
        telemetry.close()
        print(
            f"saved journal: {args.journal_out} "
            f"({telemetry.journal.records_written} records)"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
