"""Benchmark: regenerate Fig. 2 — SNIC vs host max throughput and p99.

Expected shape (paper §III-A): the host wins throughput for every
software function and for packet-stream crypto; the SNIC accelerator
wins REM with the complex ruleset (~19x) and compression (host at
46-72% of SNIC throughput).
"""

from _benchutil import emit

from repro.exp import fig2


def test_bench_fig2(benchmark, bench_config):
    result = benchmark.pedantic(
        fig2.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    rows = {row["function"]: row for row in result.rows}

    # host wins every software function
    for fn in ("kvs", "count", "ema", "nat", "bm25", "knn", "bayes"):
        assert rows[fn]["tp_ratio"] < 1.0, fn
    # SNIC accelerator wins compression (host at 46-72%)
    assert 0.4 < 1.0 / rows["compress"]["tp_ratio"] < 0.85
    # complex-ruleset REM: SNIC accelerator wins big
    assert rows["rem-lite"]["tp_ratio"] > 5.0
    # raw PKA ops: host QAT wins big (paper 24-115x)
    assert rows["crypto-pka"]["tp_ratio"] < 0.1
