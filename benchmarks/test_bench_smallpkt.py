"""Benchmark: the §III-A small-packet study (64 B vs MTU forwarding)."""

from _benchutil import emit

from repro.exp import smallpkt


def test_bench_smallpkt(benchmark, bench_config):
    result = benchmark.pedantic(
        smallpkt.run, args=(bench_config.shorter(0.5),), rounds=1, iterations=1
    )
    emit(result)
    rows = {(row["packet_bytes"], row["system"]): row for row in result.rows}
    # SNIC CPU is pps-limited at 64 B (~40 Gbps), host near line rate
    assert rows[(64, "snic")]["max_gbps"] < 50.0
    assert rows[(64, "host")]["max_gbps"] > 80.0
    # at MTU both reach line rate, the SNIC with the higher p99
    assert rows[(1500, "snic")]["max_gbps"] > 95.0
    assert rows[(1500, "host")]["max_gbps"] > 95.0
    assert rows[(1500, "snic")]["p99_us"] > rows[(1500, "host")]["p99_us"] * 2
