#!/usr/bin/env python
"""CI serve-smoke gate: daemon checkpoint/kill/restart/resume identity.

Usage: python benchmarks/check_serve_smoke.py [--duration 0.1] [--shard-jobs 2]

The end-to-end claim of service mode, exercised across *real* process
boundaries:

1. compute the uninterrupted payload sha in-process (ground truth);
2. spawn a `repro serve` daemon as a subprocess;
3. submit a small fabric job over the HTTP API;
4. checkpoint it mid-run (the job drains to the next epoch barrier);
5. SIGKILL the daemon — no cleanup, no goodbye;
6. start a fresh daemon on the same state directory (kill recovery
   must surface the job as paused/resumable);
7. resume; wait for completion; the payload sha256 must equal the
   uninterrupted run's byte for byte;
8. exercise the journal endpoint: meta/epoch/interrupt records before
   the kill, appended meta/finish after the resume.

The daemon job runs with --shard-jobs workers while the ground-truth
sha is computed in-process at shard_jobs=1, so the gate also covers
worker-count independence of checkpoints.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).parent.parent
sys.path.insert(0, str(ROOT / "src"))


def uninterrupted_sha(duration: float) -> str:
    from repro.exp.server import RunConfig
    from repro.serve.checkpoint import FabricJobParams, run_resumable

    outcome = run_resumable(
        RunConfig(duration_s=duration), FabricJobParams(racks=2, servers=2)
    )
    assert outcome.result is not None
    blob = json.dumps(
        outcome.result.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def spawn_daemon(state_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir", state_dir],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=0.1)
    parser.add_argument("--shard-jobs", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.serve.client import connect

    expected = uninterrupted_sha(args.duration)
    print(f"uninterrupted payload sha256: {expected}")

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as state_dir:
        daemon = spawn_daemon(state_dir)
        try:
            client = connect(state_dir, wait_s=30.0)
            job = client.submit_fabric(
                run_config={"duration_s": args.duration},
                params={"racks": 2, "servers": 2},
                shard_jobs=args.shard_jobs,
            )
            job_id = job["id"]
            print(f"submitted {job_id}")

            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                job = client.status(job_id)
                progress = job.get("progress") or {}
                if progress.get("epoch", -1) >= 2:
                    break
                if job["status"] != "running" and job["status"] != "queued":
                    break
                time.sleep(0.02)
            assert job["status"] == "running", f"job finished too fast: {job}"
            client.checkpoint(job_id)
            job = client.wait(job_id, timeout=120.0)
            assert job["status"] == "paused", f"expected paused: {job}"
            print(f"paused: {job['detail']}")

            records, cursor = client.journal(job_id)
            kinds = [r["kind"] for r in records]
            assert kinds and kinds[0] == "meta", kinds
            assert "interrupt" in kinds, f"no interrupt record: {kinds}"
            print(f"journal before kill: {kinds}")
        finally:
            daemon.send_signal(signal.SIGKILL)
            daemon.wait(timeout=30)
        print("daemon SIGKILLed")

        daemon = spawn_daemon(state_dir)
        try:
            client = connect(state_dir, wait_s=30.0)
            job = client.status(job_id)
            assert job["status"] == "paused", f"recovery lost the job: {job}"
            print(f"recovered as paused: {job['detail']}")

            client.resume(job_id)
            job = client.wait(job_id, timeout=300.0)
            assert job["status"] == "done", f"resume failed: {job}"
            actual = job["payload_sha256"]
            print(f"resumed payload sha256:       {actual}")
            assert actual == expected, (
                f"payload diverged after kill/resume:\n"
                f"  expected {expected}\n  actual   {actual}"
            )

            tail, _ = client.journal(job_id, since=cursor)
            tail_kinds = [r["kind"] for r in tail]
            assert "finish" in tail_kinds, f"no finish after resume: {tail_kinds}"
            print(f"journal after resume: {tail_kinds}")

            client.shutdown()
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

    print("serve-smoke ok: kill/restart/resume is byte-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
