#!/usr/bin/env python
"""CI trace-smoke gate: check an exported trace file is schema-valid.

Usage: python benchmarks/validate_trace.py trace.json [--min-tracks N]
           [--min-processes N]

Loads the Chrome/Perfetto trace-event JSON written by ``repro trace``
or ``repro fabric --fleet-trace``, runs
:func:`repro.obs.export.validate_chrome_trace` (structure plus
per-track timestamp monotonicity), and optionally requires minimum
numbers of named tracks and processes (the fleet exporter emits one
process per rack plus the control plane).  Exit 0 when clean, 1 with
the problem list otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.obs.export import (  # noqa: E402
    trace_processes,
    trace_tracks,
    validate_chrome_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument(
        "--min-tracks", type=int, default=4,
        help="minimum number of named tracks required (default 4)",
    )
    parser.add_argument(
        "--min-processes", type=int, default=1,
        help="minimum number of named processes required (default 1; "
        "multi-process fleet traces carry racks + control plane)",
    )
    args = parser.parse_args(argv)

    try:
        trace = json.loads(pathlib.Path(args.trace).read_text())
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot load {args.trace}: {error}")
        return 1

    problems = validate_chrome_trace(trace)
    tracks = trace_tracks(trace)
    processes = trace_processes(trace)
    if len(tracks) < args.min_tracks:
        problems.append(
            f"only {len(tracks)} named tracks (need >= {args.min_tracks}): {tracks}"
        )
    if len(processes) < args.min_processes:
        problems.append(
            f"only {len(processes)} named processes "
            f"(need >= {args.min_processes}): {processes}"
        )
    if problems:
        print(f"FAIL: {args.trace} has {len(problems)} problem(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1

    events = trace.get("traceEvents", [])
    other = trace.get("otherData", {})
    print(
        f"OK: {args.trace}: {len(events)} events, {len(tracks)} tracks, "
        f"{len(processes)} processes, {other.get('runs', '?')} runs, "
        f"clock={other.get('clock', '?')}, "
        f"dropped={other.get('dropped_events', '?')}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
