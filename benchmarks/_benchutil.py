"""Helpers shared by the benchmark modules."""


def emit(result) -> None:
    """Print a reproduced table under the benchmark output (visible with
    ``pytest -s`` or in captured-output sections)."""
    print()
    print(result.to_text())
