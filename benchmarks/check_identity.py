#!/usr/bin/env python
"""CI identity gate: untraced runs must stay bit-identical.

Usage: python benchmarks/check_identity.py [--baseline benchmarks/baseline.json]

Runs the fixed Fig. 5 smoke cell once (no tracing, no cache) and
compares its result-payload SHA-256 against the committed baseline.
This is the observability subsystem's hard invariant: with the default
NullTracer, simulated results — and therefore runner cache keys — are
byte-for-byte what they were before telemetry existed.  Unlike the
bench gate this needs no timing run, so it is cheap enough to run on
every push.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

DEFAULT_BASELINE = str(pathlib.Path(__file__).parent / "baseline.json")


def _fabric_payload() -> dict:
    """The fabric smoke cell's payload sha, without bench_fabric's
    timing repeats — identity only needs one run."""
    import hashlib
    import json as json_mod

    from repro.bench import fabric_smoke_config
    from repro.fabric.system import run_fabric

    result = run_fabric(fabric_smoke_config(), shard_jobs=1)
    blob = json_mod.dumps(
        result.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return {"payload_sha256": hashlib.sha256(blob.encode()).hexdigest()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    args = parser.parse_args(argv)

    from repro.bench import bench_fig5, bench_rack

    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    checks = [("fig5", "fig5_payload_sha256", lambda: bench_fig5(repeats=1))]
    # racks joined the identity gate when the cluster layer landed; older
    # baselines without the key skip the check rather than fail
    if "rack_payload_sha256" in baseline["identity"]:
        checks.append(("rack", "rack_payload_sha256", bench_rack))
    if "fabric_payload_sha256" in baseline["identity"]:
        checks.append(("fabric", "fabric_payload_sha256", _fabric_payload))
    failed = False
    for label, key, run in checks:
        expected = baseline["identity"][key]
        current = run()["payload_sha256"]
        if current != expected:
            print(
                f"FAIL: untraced {label} payload hash moved\n"
                f"  baseline {expected}\n"
                f"  current  {current}\n"
                "Untraced simulation results changed — either fix the code "
                "or, for an intended behaviour change, re-anchor "
                "benchmarks/baseline.json."
            )
            failed = True
        else:
            print(
                f"OK: untraced {label} payload sha256 matches baseline "
                f"({current[:12]}…)"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
