"""Benchmark: regenerate Fig. 3 — power and energy efficiency at the
max-throughput operating points.

Expected shape (paper §III-B): SNIC-side runs draw barely more than the
194 W idle floor (the SNIC is 0.5-2% of system power); the host's higher
throughput dominates EE at these maximum-rate points for the software
functions.
"""

from _benchutil import emit

from repro.exp import fig3


def test_bench_fig3(benchmark, bench_config):
    result = benchmark.pedantic(
        fig3.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    rows = {row["function"]: row for row in result.rows}

    for fn, row in rows.items():
        # SNIC-side system power stays near idle; host adds polling+dynamic
        assert row["snic_power_w"] < 205.0, fn
        assert row["power_ratio"] < 0.90, fn
    # at max-TP points the host's throughput advantage wins EE for the
    # software functions (paper: 73% higher on average)
    software = ("count", "nat", "knn", "ema", "kvs", "bm25", "bayes")
    losing = [fn for fn in software if rows[fn]["ee_ratio"] < 1.0]
    assert len(losing) >= 4
