"""Benchmark: the rack-scale cluster experiment (focused 4-server cell).

Expected shape: all three racks deliver the same diurnal web-trace
throughput (the rack is heavily over-provisioned at 4 servers for a
6.4 Gbps average), so energy efficiency is decided entirely by power —
and the HAL rack, whose members idle cheaper and shed host polling
while parked behind the packing policy, wins EE over the host-only
rack.  Rack-level numbers are derived, not paper-anchored; only the
relative ordering is asserted.
"""

from _benchutil import emit

from repro.exp import rack


def test_bench_cluster(benchmark, bench_config):
    result = benchmark.pedantic(
        rack.run_focused,
        args=(bench_config,),
        kwargs={"servers": 4, "policy": "packing", "trace": "web"},
        rounds=1,
        iterations=1,
    )
    emit(result)
    rows = {row["system"]: row for row in result.rows}

    # over-provisioned rack: every system delivers the offered trace
    for kind in ("hal", "host", "slb"):
        assert rows[kind]["avg_gbps"] > 0, kind
    assert abs(rows["hal"]["avg_gbps"] - rows["host"]["avg_gbps"]) < 0.5

    # the headline: HAL-rack EE beats host-rack EE at low diurnal load
    assert rows["hal"]["ee"] >= rows["host"]["ee"]

    # packing + autoscaler actually parked servers (awake well under 4)
    assert rows["hal"]["awake_mean"] < 3.0
    # HAL served the low-load trace from the SNIC side
    assert rows["hal"]["snic_share"] > 0.5
