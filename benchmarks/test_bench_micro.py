"""Microbenchmarks of the substrate hot paths.

These time the real data structures (not the queueing model): NAT table
translation, Aho-Corasick scanning, DEFLATE, public-key ops, checksum
rewriting, and raw event throughput of the simulation kernel.
"""

from repro.net.addressing import AddressPlan
from repro.net.packet import Packet
from repro.nf.compress import deflate, inflate
from repro.nf.corpus import make_bytes, make_text, make_vocabulary
from repro.nf.crypto import CryptoFunction, CryptoRequest, RSA_SIGN
from repro.nf.nat import NatFunction
from repro.nf.rem import AhoCorasick, make_tea_ruleset
from repro.sim.engine import Simulator

PLAN = AddressPlan.default()


def test_bench_nat_translate(benchmark):
    nat = NatFunction(entries=10_000)
    requests = [nat.make_request(i, 0) for i in range(512)]

    def translate_all():
        for request in requests:
            nat.process(request)

    benchmark(translate_all)
    assert nat.requests_processed > 0


def test_bench_aho_corasick_scan(benchmark):
    ruleset = make_tea_ruleset(n_patterns=500)
    automaton = AhoCorasick(ruleset.literals)
    vocab = make_vocabulary(200, seed=3)
    text = make_text(vocab, 2_000, seed=4)

    result = benchmark(automaton.search, text)
    assert isinstance(result, list)


def test_bench_deflate(benchmark):
    data = make_bytes(8_192, entropy=0.35, seed=9)
    blob = benchmark(deflate, data)
    assert inflate(blob) == data


def test_bench_inflate(benchmark):
    data = make_bytes(8_192, entropy=0.35, seed=9)
    blob = deflate(data)
    assert benchmark(inflate, blob) == data


def test_bench_rsa_sign_verify(benchmark):
    crypto = CryptoFunction(key_bits=512, seed=1)

    def sign():
        return crypto.process(CryptoRequest(op=RSA_SIGN, message=b"payload"))

    response = benchmark(sign)
    assert response.ok


def test_bench_checksum_rewrite(benchmark):
    def rewrite_cycle():
        packet = Packet(src=PLAN.client, dst=PLAN.snic)
        packet.rewrite_destination(PLAN.host)
        packet.rewrite_source(PLAN.snic)
        return packet

    packet = benchmark(rewrite_cycle)
    assert packet.checksum_ok()


def test_bench_sim_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()

        def chain(remaining):
            if remaining:
                sim.schedule(1e-6, chain, remaining - 1)

        chain(10_000)
        sim.run()
        return sim.events_processed

    events = benchmark(run_10k_events)
    assert events == 10_000
