"""Benchmark: the offline profiler (§V-B's profile-in-advance option)."""

from repro.core.profiler import characterize_function


def test_bench_profiler_nat(benchmark, bench_config):
    ch = benchmark.pedantic(
        characterize_function,
        args=("nat", bench_config.shorter(0.5)),
        kwargs=dict(sweep_points=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(ch.summary())
    assert 30.0 < ch.slo_gbps < 47.0
    assert ch.recommended_threshold_gbps < ch.max_gbps
