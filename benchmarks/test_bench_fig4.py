"""Benchmark: regenerate Fig. 4 — TP/p99/power/EE vs packet rate for REM
and NAT on the host and SNIC processors.

Expected shape: the SNIC saturates at ~43 (REM) / ~41.5 (NAT) Gbps and
its p99 plateaus at the drop-limited value; below those rates the SNIC
beats the host's system EE by ~30-40%.
"""

from _benchutil import emit

from repro.exp import fig4


def _grid(result):
    return {
        (row["function"], row["system"], row["offered_gbps"]): row
        for row in result.rows
    }


def test_bench_fig4(benchmark, bench_config):
    result = benchmark.pedantic(
        fig4.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    grid = _grid(result)

    # SNIC saturation points (paper: NAT 41, REM drops beyond ~43-50)
    assert 38.0 < grid[("nat", "snic", 80.0)]["tp_gbps"] < 45.0
    assert 40.0 < grid[("rem", "snic", 80.0)]["tp_gbps"] < 48.0
    # host keeps scaling
    assert grid[("nat", "host", 80.0)]["tp_gbps"] > 78.0
    # p99 plateau past the drop cliff
    snic_60 = grid[("nat", "snic", 60.0)]["p99_us"]
    snic_100 = grid[("nat", "snic", 100.0)]["p99_us"]
    assert abs(snic_100 - snic_60) / snic_60 < 0.2
    # SNIC EE advantage below the knee (paper: 31% for NAT at 41 Gbps)
    ee_snic = grid[("nat", "snic", 30.0)]["ee"]
    ee_host = grid[("nat", "host", 30.0)]["ee"]
    assert ee_snic / ee_host > 1.2
