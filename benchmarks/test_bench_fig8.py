"""Benchmark: regenerate Fig. 8 — the web/cache/Hadoop rate traces."""

from _benchutil import emit

from repro.exp import fig8


def test_bench_fig8(benchmark, bench_config):
    result = benchmark(fig8.run, bench_config)
    emit(result)
    rows = {row["trace"]: row for row in result.rows}

    for name, row in rows.items():
        assert row["avg_gbps"] > 0
        assert row["peak_gbps"] <= 100.0
    # averages track the paper's 1.6 / 5.2 / 10.9 Gbps
    assert rows["web"]["avg_gbps"] == rows["web"]["avg_gbps"]
    assert abs(rows["web"]["avg_gbps"] - 1.6) / 1.6 < 0.35
    assert abs(rows["cache"]["avg_gbps"] - 5.2) / 5.2 < 0.35
    assert abs(rows["hadoop"]["avg_gbps"] - 10.9) / 10.9 < 0.35
    # heavier sigma -> burstier: cache idles more than web
    assert rows["cache"]["idle_fraction"] > rows["web"]["idle_fraction"]
