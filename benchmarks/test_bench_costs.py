"""Benchmark: regenerate the §VII-C HLB cost report."""

from _benchutil import emit

from repro.exp import costs


def test_bench_costs(benchmark, bench_config):
    result = benchmark(costs.run, bench_config)
    emit(result)
    metrics = {row["metric"]: row["value"] for row in result.rows}
    assert metrics["LUTs"] == 13_861
    assert metrics["added RTT (ns)"] == 800.0
