#!/usr/bin/env python
"""CI lint ratchet: the committed baseline may only shrink.

Usage: python benchmarks/check_lint_ratchet.py \
           [--baseline lint_baseline.json] [--paths src]

Runs ``hal-repro lint --format=json --no-baseline`` in a subprocess
(the same entry point contributors use) and diffs the per-file,
per-rule finding counts against the committed baseline:

* any count above the baseline          -> FAIL (new determinism debt);
* any count below the baseline          -> FAIL (debt was fixed but the
  baseline was not ratcheted down; run ``hal-repro lint
  --update-baseline`` and commit the shrunken file);
* counts equal everywhere               -> OK.

Failing the *stale* direction is what makes the baseline monotone: it
can never silently re-grow to its old size after a fix lands.

The report's ``rules`` list is also checked against the families the
ratchet is meant to cover (DET, MUT, OBS, UNIT, SNAP, THR, BAR): a
refactor that silently drops a rule family from the default run would
otherwise make the ratchet vacuously green.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).parent.parent
DEFAULT_BASELINE = str(REPO_ROOT / "lint_baseline.json")

#: every rule family the ratchet must see in the default run
REQUIRED_RULES = frozenset({
    "DET01", "DET02", "DET03", "DET04", "MUT01", "OBS01", "UNIT01",
    "SNAP01", "THR01", "THR02", "BAR01",
})


def run_lint_json(paths):
    """Invoke the linter CLI and parse its JSON report."""
    import os

    cmd = [
        sys.executable, "-m", "repro.lint",
        *paths, "--format=json", "--no-baseline",
    ]
    src = str(REPO_ROOT / "src")
    prior = os.environ.get("PYTHONPATH")
    env = {
        **os.environ,
        "PYTHONPATH": src + (os.pathsep + prior if prior else ""),
    }
    proc = subprocess.run(
        cmd, capture_output=True, text=True, cwd=str(REPO_ROOT), env=env
    )
    if proc.returncode not in (0, 1):
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"lint invocation failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--paths", nargs="*", default=["src"])
    args = parser.parse_args(argv)

    baseline = json.loads(pathlib.Path(args.baseline).read_text())
    allowed = baseline.get("counts", {})
    report = run_lint_json(args.paths)
    actual = report.get("counts", {})

    failures = []
    dropped = REQUIRED_RULES - set(report.get("rules", []))
    if dropped:
        failures.append(
            f"MISSING FAMILIES: the default lint run no longer reports "
            f"{sorted(dropped)}; the ratchet cannot vouch for rules it "
            "never ran"
        )
    keys = {
        (path, rule)
        for path, rules in list(allowed.items()) + list(actual.items())
        for rule in rules
    }
    for path, rule in sorted(keys):
        want = allowed.get(path, {}).get(rule, 0)
        have = actual.get(path, {}).get(rule, 0)
        if have > want:
            failures.append(
                f"NEW DEBT: {path} {rule}: {have} finding(s), baseline "
                f"allows {want}"
            )
        elif have < want:
            failures.append(
                f"STALE BASELINE: {path} {rule}: baselined at {want} but "
                f"only {have} remain — run `hal-repro lint "
                "--update-baseline` and commit"
            )

    if failures:
        for line in failures:
            print(f"FAIL: {line}")
        findings = report.get("findings", [])
        if findings:
            print("\ncurrent findings:")
            for finding in findings:
                print(
                    f"  {finding['path']}:{finding['line']}:{finding['col']} "
                    f"{finding['rule']} {finding['message']}"
                )
        return 1
    total = sum(sum(rules.values()) for rules in actual.values())
    print(f"OK: lint ratchet holds ({total} baselined finding(s), 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
