"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures at a reduced simulated duration (the shapes converge well before
the paper's 10-minute traces) and prints the reproduced rows, so running

    pytest benchmarks/ --benchmark-only

emits the full evaluation alongside the timing data.

Passing ``--bench-json FILE`` additionally runs the hot-path perf
benchmarks of :mod:`repro.bench` at session end and writes their results
(the same schema ``python -m repro bench --bench-json`` produces) for
``benchmarks/check_regression.py`` to gate on.
"""

import pytest

from repro.exp.server import RunConfig


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default=None, metavar="FILE",
        help="write repro.bench hot-path results to FILE at session end",
    )
    parser.addoption(
        "--bench-scale", action="store", type=float, default=1.0,
        help="workload scale factor for --bench-json runs",
    )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--bench-json")
    if not path or exitstatus != 0:
        return
    from repro.bench import run_bench, write_results

    write_results(run_bench(scale=session.config.getoption("--bench-scale")), path)

#: simulated seconds per run inside benchmarks — enough for the paper's
#: qualitative shapes while keeping the whole suite in minutes
BENCH_DURATION_S = 0.1


@pytest.fixture(scope="session")
def bench_config() -> RunConfig:
    return RunConfig(duration_s=BENCH_DURATION_S, seed=2024)


@pytest.fixture(scope="session")
def trace_config() -> RunConfig:
    # trace runs need a few burst intervals to be representative
    return RunConfig(duration_s=0.3, seed=2024)
