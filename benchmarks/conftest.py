"""Shared configuration for the benchmark harness.

Each ``test_bench_*`` module regenerates one of the paper's tables or
figures at a reduced simulated duration (the shapes converge well before
the paper's 10-minute traces) and prints the reproduced rows, so running

    pytest benchmarks/ --benchmark-only

emits the full evaluation alongside the timing data.
"""

import pytest

from repro.exp.server import RunConfig

#: simulated seconds per run inside benchmarks — enough for the paper's
#: qualitative shapes while keeping the whole suite in minutes
BENCH_DURATION_S = 0.1


@pytest.fixture(scope="session")
def bench_config() -> RunConfig:
    return RunConfig(duration_s=BENCH_DURATION_S, seed=2024)


@pytest.fixture(scope="session")
def trace_config() -> RunConfig:
    # trace runs need a few burst intervals to be representative
    return RunConfig(duration_s=0.3, seed=2024)
