"""Ablation benchmarks for HAL's design choices (DESIGN.md call-outs).

Not figures from the paper, but the design knobs §V motivates:

* adaptive vs fixed LBP step (the §V-B optimisation);
* LBP watermark band width;
* HLB (hardware) vs SLB (software) vs host-side SLB at the same split;
* CXL-coherent vs PCIe shared state for a stateful function (§V-C).
"""

import pytest
from _benchutil import emit

from repro.core.lbp import LbpConfig
from repro.exp.report import ExperimentResult
from repro.exp.server import RunConfig, build_system, run_at_rate
from repro.net.traffic import ConstantRateGenerator


def _run(system, rate, config):
    generator = ConstantRateGenerator(
        system.plan, config.spec(rate), system.rng, rate
    )
    return system.run(generator, config.duration_s)


def test_bench_ablation_lbp_step(benchmark, bench_config):
    """Adaptive step should shed overload faster -> fewer drops under a
    rate far above the initial threshold."""

    def run_ablation():
        result = ExperimentResult(
            experiment="ablation-lbp-step",
            title="LBP fixed vs adaptive step at 80 Gbps (NAT)",
            columns=("variant", "tp_gbps", "p99_us", "drop_rate", "final_th"),
        )
        for variant, adaptive in (("fixed", False), ("adaptive", True)):
            system = build_system(
                "hal", "nat", bench_config,
                lbp_config=LbpConfig(adaptive_step=adaptive),
                initial_threshold_gbps=60.0,  # deliberately too high
            )
            m = _run(system, 80.0, bench_config)
            result.add_row(
                variant=variant,
                tp_gbps=m.throughput_gbps,
                p99_us=m.p99_latency_us,
                drop_rate=m.drop_rate,
                final_th=m.extras["fwd_threshold_gbps"],
            )
        return result

    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(result)
    fixed, adaptive = result.rows
    assert adaptive["p99_us"] <= fixed["p99_us"] * 1.5


def test_bench_ablation_watermarks(benchmark, bench_config):
    """Wider watermark bands leave deeper SNIC queues -> higher p99."""

    def run_ablation():
        result = ExperimentResult(
            experiment="ablation-watermarks",
            title="LBP watermark band vs p99 at 60 Gbps (NAT)",
            columns=("wm_high", "tp_gbps", "p99_us", "snic_share"),
        )
        for wm_high in (8, 16, 64, 192):
            system = build_system(
                "hal", "nat", bench_config,
                lbp_config=LbpConfig(wm_low_packets=2, wm_high_packets=wm_high),
            )
            m = _run(system, 60.0, bench_config)
            result.add_row(
                wm_high=wm_high,
                tp_gbps=m.throughput_gbps,
                p99_us=m.p99_latency_us,
                snic_share=m.snic_share,
            )
        return result

    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(result)
    p99 = {row["wm_high"]: row["p99_us"] for row in result.rows}
    assert p99[192] > p99[8]


def test_bench_ablation_balancer_kind(benchmark, bench_config):
    """HLB vs SLB vs host-side SLB at the same operating point."""

    def run_ablation():
        result = ExperimentResult(
            experiment="ablation-balancer",
            title="Load balancer implementations at 80 Gbps (NAT)",
            columns=("balancer", "tp_gbps", "p99_us", "drop_rate", "power_w"),
        )
        systems = (
            ("hal", build_system("hal", "nat", bench_config)),
            (
                "slb-4c",
                build_system(
                    "slb", "nat", bench_config,
                    fwd_threshold_gbps=41.0, slb_cores=4,
                ),
            ),
            (
                "host-slb",
                build_system(
                    "host-slb", "nat", bench_config, fwd_threshold_gbps=41.0
                ),
            ),
        )
        for name, system in systems:
            m = _run(system, 80.0, bench_config)
            result.add_row(
                balancer=name,
                tp_gbps=m.throughput_gbps,
                p99_us=m.p99_latency_us,
                drop_rate=m.drop_rate,
                power_w=m.average_power_w,
            )
        return result

    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(result)
    rows = {row["balancer"]: row for row in result.rows}
    assert rows["hal"]["p99_us"] <= rows["slb-4c"]["p99_us"]
    assert rows["hal"]["power_w"] <= rows["host-slb"]["power_w"]


def test_bench_ablation_state_interconnect(benchmark, bench_config):
    """§V-C: stateful cooperation needs coherence — PCIe state sharing
    costs far more stall time than CXL."""

    def run_ablation():
        result = ExperimentResult(
            experiment="ablation-interconnect",
            title="CXL vs PCIe shared state at 80 Gbps (Count)",
            columns=("interconnect", "tp_gbps", "p99_us", "stall_ms"),
        )
        for interconnect in ("cxl", "pcie"):
            system = build_system(
                "hal", "count", bench_config, interconnect=interconnect
            )
            m = _run(system, 80.0, bench_config)
            result.add_row(
                interconnect=interconnect,
                tp_gbps=m.throughput_gbps,
                p99_us=m.p99_latency_us,
                stall_ms=m.extras.get("coherence_stall_s", 0.0) * 1e3,
            )
        return result

    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(result)
    rows = {row["interconnect"]: row for row in result.rows}
    assert rows["pcie"]["stall_ms"] > rows["cxl"]["stall_ms"] * 2
