"""Benchmark: regenerate Fig. 9 — TP/p99/power vs rate for NAT and REM
under host-only, SNIC-only, and HAL.

Expected shape (paper §VII-A): HAL throughput grows linearly with the
offered rate (host absorbs the excess); HAL p99 stays near the SNIC's
low-rate latency instead of exploding; HAL power tracks SNIC-only up to
the SLO rate and stays 10-25% below host-only beyond it.
"""

from _benchutil import emit

from repro.exp import fig9


def _grid(result):
    return {
        (row["function"], row["system"], row["offered_gbps"]): row
        for row in result.rows
    }


def test_bench_fig9(benchmark, bench_config):
    result = benchmark.pedantic(
        fig9.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result)
    grid = _grid(result)

    for fn in ("nat", "rem"):
        # HAL scales linearly where the SNIC alone saturates
        for rate in (60.0, 80.0, 100.0):
            assert grid[(fn, "hal", rate)]["tp_gbps"] > rate * 0.97, (fn, rate)
            assert grid[(fn, "hal", rate)]["drop_rate"] < 0.02
        # HAL p99 far below SNIC-only past the cliff
        assert (
            grid[(fn, "hal", 80.0)]["p99_us"]
            < grid[(fn, "snic", 80.0)]["p99_us"] / 3
        ), fn
        # HAL power below host-only at every rate (paper: 11-27% lower)
        for rate in (10.0, 41.0, 80.0):
            assert (
                grid[(fn, "hal", rate)]["power_w"]
                < grid[(fn, "host", rate)]["power_w"]
            ), (fn, rate)
        # at low rates HAL == SNIC power (host asleep)
        assert grid[(fn, "hal", 10.0)]["power_w"] < 200.0
