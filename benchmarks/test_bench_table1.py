"""Benchmark: regenerate Table I (accelerator support matrix)."""

from _benchutil import emit

from repro.exp import table1


def test_bench_table1(benchmark, bench_config):
    result = benchmark(table1.run, bench_config)
    assert len(result.rows) == 23
    emit(result)
